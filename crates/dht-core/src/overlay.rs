//! The overlay interface the experiment engine drives.
//!
//! Both simulators (Chord and Cycloid) store their nodes in a generational
//! arena and expose routing through this trait, so the discovery systems
//! and the measurement harness are agnostic to which DHT is underneath.

use crate::error::DhtError;
use crate::fault::{FaultPlan, MsgId};
use crate::trace::{RouteResult, RouteStats};

/// Arena index of a node within an overlay.
///
/// Indices are stable for the lifetime of a node; a departed node's slot is
/// tomb-stoned (never reused within one experiment) so traces and directory
/// references can always be attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub usize);

impl NodeIdx {
    /// The raw arena slot.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// How an overlay (or a system mounted on one) assembles its initial
/// membership and directory state.
///
/// Both modes produce byte-identical overlays — the equivalence is pinned
/// by proptests — so the choice is purely a construction-cost knob:
/// `Bulk` sorts the drawn identifiers once and derives all link state in
/// one pass (O(n log n)), while `Incremental` performs one ordered insert
/// per node (O(n²) aggregate), which is the reference path and the shape
/// genuine runtime joins take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildMode {
    /// Sorted bulk construction — the default for experiment beds.
    #[default]
    Bulk,
    /// Per-node ordered inserts — the reference path used to validate the
    /// bulk constructors.
    Incremental,
}

/// A structured DHT overlay, as seen by the discovery layer.
///
/// The associated `Key` type is the overlay's identifier: a plain `u64` for
/// Chord, a (cyclic, cubical) pair for Cycloid.
pub trait Overlay {
    /// Identifier type of keys and nodes.
    type Key: Copy + std::fmt::Debug;

    /// Number of live nodes.
    fn len(&self) -> usize;

    /// True when the overlay has no live nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonic mutation counter. Every operation that changes routing
    /// state — membership (join/leave/fail), link maintenance
    /// (stabilize/fix-fingers/repair) or bulk rebuilds — strictly
    /// increases the epoch, so two observations of the same epoch
    /// guarantee the overlay routed identically in between. This is the
    /// staleness bound the [`RouteCache`](crate::cache::RouteCache)
    /// invalidates on: a cached entry stamped with an older epoch is a
    /// miss by definition. Implementations start at a nonzero epoch
    /// (construction itself mutates state), which lets the cache use
    /// `epoch == 0` as its empty-slot sentinel.
    fn epoch(&self) -> u64;

    /// Fold a key into 64 bits for cache addressing. Must be injective
    /// over the overlay's key space so distinct keys can never alias a
    /// cache entry: the identity for Chord's `u64` ring positions, the
    /// packed `(cyclic << 32) | cubical` pair for Cycloid.
    fn key_bits(&self, key: Self::Key) -> u64;

    /// Arena indices of all live nodes, borrowed from the overlay's
    /// internal index (no allocation). The order is deterministic and
    /// overlay-specific (ring order for Chord, arena order for Cycloid).
    fn live_nodes(&self) -> &[NodeIdx];

    /// Owned copy of [`Overlay::live_nodes`] — only for callers that must
    /// mutate the overlay while iterating (maintenance loops). Hot paths
    /// borrow instead; the `route-path-alloc` lint flags new clones.
    fn live_nodes_cloned(&self) -> Vec<NodeIdx> {
        self.live_nodes().to_vec()
    }

    /// Ground-truth owner of a key (consistent-hashing assignment), without
    /// routing. Used to verify that routed lookups are exact.
    fn owner_of(&self, key: Self::Key) -> Result<NodeIdx, DhtError>;

    /// Route a lookup for `key` from `from`, tracing every hop.
    fn route(&self, from: NodeIdx, key: Self::Key) -> Result<RouteResult, DhtError>;

    /// Route a lookup for `key` from `from` without tracing the path:
    /// only `(hops, terminal, exact)` are produced. Semantically identical
    /// to [`Overlay::route`]; overlays override this with an
    /// allocation-free hop counter (the default delegates to the traced
    /// variant).
    fn route_stats(&self, from: NodeIdx, key: Self::Key) -> Result<RouteStats, DhtError> {
        // lint:allow(route-path-alloc): compatibility default for overlays
        // without a dedicated fast path; both simulators override it.
        let r = self.route(from, key)?;
        Ok(RouteStats { hops: r.hops(), terminal: r.terminal, exact: r.exact })
    }

    /// Route a lookup under a fault plan: forwarding consults the plan's
    /// per-message drop coins and failed-node set, surfacing
    /// [`DhtError::MessageDropped`] / [`DhtError::DeadHop`] outcomes.
    /// Overlays route through a `FaultSink`-wrapped routing loop and
    /// short-circuit inert plans to the plain fast path (byte-identical
    /// results); the default ignores the plan — fault-unaware overlays
    /// simply never degrade.
    fn route_stats_faulty(
        &self,
        from: NodeIdx,
        key: Self::Key,
        plan: &FaultPlan,
        msg: MsgId,
    ) -> Result<RouteStats, DhtError> {
        let _ = (plan, msg);
        self.route_stats(from, key)
    }

    /// Number of *distinct* outgoing links `node` currently maintains.
    /// This is the structure-maintenance-overhead metric of Figure 3(a).
    fn outlinks(&self, node: NodeIdx) -> Result<usize, DhtError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_idx_display() {
        assert_eq!(NodeIdx(17).to_string(), "n17");
    }

    #[test]
    fn node_idx_ordering_follows_slot() {
        assert!(NodeIdx(1) < NodeIdx(2));
        assert_eq!(NodeIdx(3).index(), 3);
    }
}
