//! Arithmetic on the 64-bit circular identifier space.
//!
//! Chord (and the large cycle of Cycloid) place identifiers on a ring of
//! size 2^64. All interval predicates here follow the conventions of the
//! Chord paper: intervals are *directed clockwise* from their first
//! endpoint, and wrap around zero.

/// Clockwise distance from `a` to `b` on the 2^64 ring.
///
/// This is the number of identifier positions a message travelling
/// clockwise (in the direction of increasing identifiers) must cover to get
/// from `a` to `b`. It is zero iff `a == b`.
#[inline]
pub fn clockwise_dist(a: u64, b: u64) -> u64 {
    b.wrapping_sub(a)
}

/// Minimal (bidirectional) distance between `a` and `b` on the 2^64 ring.
#[inline]
pub fn ring_dist(a: u64, b: u64) -> u64 {
    let cw = clockwise_dist(a, b);
    let ccw = clockwise_dist(b, a);
    cw.min(ccw)
}

/// Is `x` in the half-open clockwise interval `(a, b]`?
///
/// This is the ownership test of consistent hashing: a node with identifier
/// `b` and predecessor `a` owns exactly the keys in `(a, b]`.
/// When `a == b` the interval denotes the *entire* ring (the single-node
/// case), matching Chord's convention.
#[inline]
pub fn in_interval_oc(a: u64, b: u64, x: u64) -> bool {
    if a == b {
        true
    } else {
        clockwise_dist(a, x) <= clockwise_dist(a, b) && x != a
    }
}

/// Is `x` in the half-open clockwise interval `[a, b)`?
#[inline]
pub fn in_interval_co(a: u64, b: u64, x: u64) -> bool {
    if a == b {
        true
    } else {
        clockwise_dist(a, x) < clockwise_dist(a, b)
    }
}

/// Is `x` in the open clockwise interval `(a, b)`?
///
/// Used by Chord's `closest_preceding_finger`: a finger `f` makes progress
/// towards key `k` from node `n` iff `f ∈ (n, k)`. When `a == b` the open
/// interval is the whole ring minus the endpoint, again per Chord.
#[inline]
pub fn in_interval_oo(a: u64, b: u64, x: u64) -> bool {
    if a == b {
        x != a
    } else {
        x != a && x != b && clockwise_dist(a, x) < clockwise_dist(a, b)
    }
}

/// Midpoint of the clockwise arc from `a` to `b` (used by tests and by
/// load-splitting heuristics).
#[inline]
pub fn clockwise_midpoint(a: u64, b: u64) -> u64 {
    a.wrapping_add(clockwise_dist(a, b) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clockwise_dist_simple() {
        assert_eq!(clockwise_dist(10, 25), 15);
        assert_eq!(clockwise_dist(25, 10), u64::MAX - 14);
        assert_eq!(clockwise_dist(7, 7), 0);
    }

    #[test]
    fn clockwise_dist_wraps() {
        assert_eq!(clockwise_dist(u64::MAX, 0), 1);
        assert_eq!(clockwise_dist(u64::MAX - 1, 2), 4);
    }

    #[test]
    fn ring_dist_symmetric() {
        assert_eq!(ring_dist(3, 10), 7);
        assert_eq!(ring_dist(10, 3), 7);
        assert_eq!(ring_dist(0, u64::MAX), 1);
    }

    #[test]
    fn oc_interval_basic() {
        assert!(in_interval_oc(10, 20, 15));
        assert!(in_interval_oc(10, 20, 20)); // closed at right
        assert!(!in_interval_oc(10, 20, 10)); // open at left
        assert!(!in_interval_oc(10, 20, 25));
    }

    #[test]
    fn oc_interval_wrapping() {
        // interval (MAX-5, 5] crosses zero
        assert!(in_interval_oc(u64::MAX - 5, 5, 0));
        assert!(in_interval_oc(u64::MAX - 5, 5, u64::MAX));
        assert!(in_interval_oc(u64::MAX - 5, 5, 5));
        assert!(!in_interval_oc(u64::MAX - 5, 5, 6));
        assert!(!in_interval_oc(u64::MAX - 5, 5, u64::MAX - 5));
    }

    #[test]
    fn oc_interval_degenerate_is_whole_ring() {
        assert!(in_interval_oc(42, 42, 0));
        assert!(in_interval_oc(42, 42, 41));
        assert!(in_interval_oc(42, 42, 42));
    }

    #[test]
    fn co_interval_basic() {
        assert!(in_interval_co(10, 20, 10));
        assert!(!in_interval_co(10, 20, 20));
        assert!(in_interval_co(10, 20, 19));
    }

    #[test]
    fn oo_interval_basic() {
        assert!(in_interval_oo(10, 20, 15));
        assert!(!in_interval_oo(10, 20, 10));
        assert!(!in_interval_oo(10, 20, 20));
    }

    #[test]
    fn oo_interval_degenerate_excludes_endpoint_only() {
        assert!(in_interval_oo(5, 5, 6));
        assert!(in_interval_oo(5, 5, 4));
        assert!(!in_interval_oo(5, 5, 5));
    }

    #[test]
    fn midpoint_no_wrap() {
        assert_eq!(clockwise_midpoint(10, 20), 15);
    }

    #[test]
    fn midpoint_wrapping() {
        let m = clockwise_midpoint(u64::MAX - 9, 10);
        // arc length 20, midpoint 10 positions clockwise of MAX-9
        assert_eq!(m, 0);
    }
}
