//! Measurement primitives for the paper's metrics.
//!
//! Every figure of the paper reports one of three statistics:
//!
//! * **means** (average logical hops, average visited nodes),
//! * **totals** (total logical hops over a query batch),
//! * **1st / 99th percentiles** (directory-size distributions, Figure 3).
//!
//! [`Summary`] is a streaming (Welford) accumulator for the first two;
//! [`Percentiles`] gives exact order statistics; [`LoadDist`] wraps a
//! per-node load vector with the avg/p1/p99 view used by Figure 3.

/// Streaming summary statistics (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    total: f64,
    failures: u64,
    retries: u64,
    partial: u64,
    dropped_msgs: u64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            total: 0.0,
            failures: 0,
            retries: 0,
            partial: 0,
            dropped_msgs: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.total += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a failed observation (a query that returned `Err`). Failures
    /// are tracked separately and do not contribute to the moments.
    pub fn record_failure(&mut self) {
        self.failures += 1;
    }

    /// Record a partially-resolved observation: the value contributes to
    /// the moments (a degraded query still did real work), and the
    /// `partial` counter marks it so `failures + partial + successes`
    /// accounts for every query issued.
    pub fn record_partial(&mut self, x: f64) {
        self.record(x);
        self.partial += 1;
    }

    /// Add retry attempts spent resolving queries under a fault plan.
    pub fn add_retries(&mut self, n: u64) {
        self.retries += n;
    }

    /// Add messages dropped in transit by a fault plan.
    pub fn add_dropped_msgs(&mut self, n: u64) {
        self.dropped_msgs += n;
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        let failures = self.failures + other.failures;
        self.failures = failures;
        let retries = self.retries + other.retries;
        self.retries = retries;
        let partial = self.partial + other.partial;
        self.partial = partial;
        let dropped_msgs = self.dropped_msgs + other.dropped_msgs;
        self.dropped_msgs = dropped_msgs;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            self.failures = failures;
            self.retries = retries;
            self.partial = partial;
            self.dropped_msgs = dropped_msgs;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of failed observations (see [`Summary::record_failure`]).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Retry attempts spent under a fault plan (0 on fault-free runs).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Partially-resolved observations (see [`Summary::record_partial`]).
    pub fn partial(&self) -> u64 {
        self.partial
    }

    /// Fully-successful observations: `count() - partial()`.
    pub fn successes(&self) -> u64 {
        self.count - self.partial
    }

    /// Messages dropped in transit under a fault plan.
    pub fn dropped_msgs(&self) -> u64 {
        self.dropped_msgs
    }

    /// Arithmetic mean (`0.0` when empty), computed as `total / count`.
    ///
    /// For the integer-valued metrics this repo records (hops, visited
    /// nodes, directory sizes) `total` is exact in an `f64`, so the mean
    /// is bit-identical however the observations were sharded and merged
    /// — unlike the internal Welford running mean, whose last bits depend
    /// on accumulation order.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Sum of all observations.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Population variance (`0.0` when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Exact percentiles over a collected sample (nearest-rank method).
#[derive(Debug, Clone)]
pub struct Percentiles {
    sorted: Vec<f64>,
}

impl Percentiles {
    /// Build from an arbitrary sample; `O(n log n)`.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Nearest-rank percentile of the sample.
    ///
    /// `p` is clamped into `[0, 100]`; `p = 0` answers the minimum (the
    /// nearest-rank formula would otherwise ask for rank 0, which does not
    /// exist) and `p = 100` the maximum. A `NaN` passed as `p` clamps to
    /// `0`, i.e. also answers the minimum.
    ///
    /// NaN policy for the *sample*: an empty sample answers `NaN` (there
    /// is no order statistic to report, and `NaN` poisons any downstream
    /// aggregate instead of silently contributing a zero). NaN *samples*
    /// are not rejected — [`f64::total_cmp`] in
    /// [`Percentiles::from_samples`] sorts them after every real value, so
    /// they occupy the top ranks and only surface in high percentiles.
    /// Simulation metrics (hop counts, directory sizes) never produce NaN,
    /// so this is a containment guarantee, not an expected path.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

/// Per-node load distribution: the avg / 1st-percentile / 99th-percentile
/// view of directory sizes plotted throughout Figure 3.
///
/// Percentile queries sort the sample once, lazily, and reuse the sorted
/// copy for every subsequent query (the Figure 3 sweeps ask for `p1` and
/// `p99` of the same distribution repeatedly).
#[derive(Debug, Clone)]
pub struct LoadDist {
    loads: Vec<f64>,
    sorted: std::sync::OnceLock<Percentiles>,
}

impl LoadDist {
    /// Wrap a per-node load vector (one entry per live node).
    pub fn new(loads: Vec<f64>) -> Self {
        Self { loads, sorted: std::sync::OnceLock::new() }
    }

    /// Wrap integer per-node counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        Self::new(counts.iter().map(|&c| c as f64).collect())
    }

    fn percentiles(&self) -> &Percentiles {
        self.sorted.get_or_init(|| Percentiles::from_samples(self.loads.clone()))
    }

    /// Number of nodes measured.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// True when no nodes were measured.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Average load per node.
    pub fn mean(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.loads.iter().sum::<f64>() / self.loads.len() as f64
        }
    }

    /// Total load across all nodes.
    pub fn total(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// 1st percentile of per-node load.
    pub fn p1(&self) -> f64 {
        self.percentiles().percentile(1.0)
    }

    /// 99th percentile of per-node load.
    pub fn p99(&self) -> f64 {
        self.percentiles().percentile(99.0)
    }

    /// Nearest-rank percentile of per-node load, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.percentiles().percentile(p)
    }

    /// Maximum per-node load.
    pub fn max(&self) -> f64 {
        self.loads.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coefficient of variation (std/mean) — a compact imbalance measure
    /// used by the ablation benches.
    pub fn cv(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        let var = self.loads.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>()
            / self.loads.len() as f64;
        var.sqrt() / mean
    }

    /// Borrow the raw per-node loads.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }
}

/// A fixed-width histogram over `[0, max)` with unit buckets, plus an
/// overflow bucket — suited to hop counts and probe counts, whose support
/// is small and discrete. Renders compact distribution tables for the
/// extension artifacts (`repro hopdist`).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// A histogram with unit buckets `0..max`.
    pub fn new(max: usize) -> Self {
        Self { buckets: vec![0; max], overflow: 0, count: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: usize) {
        match self.buckets.get_mut(x) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bucket `x` (`None` beyond range).
    pub fn bucket(&self, x: usize) -> Option<u64> {
        self.buckets.get(x).copied()
    }

    /// Observations past the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of observations at or below `x` (overflow counts as above).
    pub fn cdf(&self, x: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let upto: u64 = self.buckets.iter().take(x + 1).sum();
        upto as f64 / self.count as f64
    }

    /// Smallest `x` with `cdf(x) >= q` (`None` when it falls in overflow).
    pub fn quantile(&self, q: f64) -> Option<usize> {
        let q = q.clamp(0.0, 1.0);
        (0..self.buckets.len()).find(|&x| self.cdf(x) >= q)
    }

    /// The mode (most frequent in-range value), ties to the smaller.
    pub fn mode(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }

    /// Non-empty `(value, count)` pairs in order, overflow last as `None`.
    pub fn entries(&self) -> impl Iterator<Item = (Option<usize>, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Some(i), c))
            .chain((self.overflow > 0).then_some((None, self.overflow)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.total(), 40.0);
    }

    #[test]
    fn degradation_counters_record_and_report() {
        let mut s = Summary::new();
        s.record(3.0);
        s.record_partial(5.0);
        s.record_failure();
        s.add_retries(4);
        s.add_dropped_msgs(2);
        assert_eq!(s.count(), 2, "partial observations still count");
        assert_eq!(s.partial(), 1);
        assert_eq!(s.successes(), 1);
        assert_eq!(s.failures(), 1);
        assert_eq!(s.retries(), 4);
        assert_eq!(s.dropped_msgs(), 2);
        assert_eq!(s.total(), 8.0);
    }

    #[test]
    fn degradation_counters_merge_additively() {
        let mut a = Summary::new();
        a.record_partial(1.0);
        a.add_retries(2);
        a.add_dropped_msgs(3);
        let mut b = Summary::new();
        b.record_partial(9.0);
        b.record_failure();
        b.add_retries(5);
        b.add_dropped_msgs(7);
        a.merge(&b);
        assert_eq!(a.partial(), 2);
        assert_eq!(a.retries(), 7);
        assert_eq!(a.dropped_msgs(), 10);
        assert_eq!(a.failures(), 1);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn degradation_counters_survive_empty_side_merges() {
        // The empty-side early returns in merge() must not lose counters
        // accumulated on the empty side (a shard can drop every query).
        let mut empty = Summary::new();
        empty.add_retries(3);
        empty.add_dropped_msgs(1);
        empty.record_failure();
        let mut full = Summary::new();
        full.record(2.0);
        full.add_retries(10);
        // empty (no observations) absorbing full
        let mut left = empty.clone();
        left.merge(&full);
        assert_eq!(left.retries(), 13);
        assert_eq!(left.dropped_msgs(), 1);
        assert_eq!(left.failures(), 1);
        assert_eq!(left.count(), 1);
        // full absorbing empty
        let mut right = full.clone();
        right.merge(&empty);
        assert_eq!(right.retries(), 13);
        assert_eq!(right.dropped_msgs(), 1);
        assert_eq!(right.failures(), 1);
        assert_eq!(right.count(), 1);
        // merge order must not matter for the counters
        assert_eq!(left.retries(), right.retries());
        assert_eq!(left.partial(), right.partial());
        assert_eq!(left.dropped_msgs(), right.dropped_msgs());
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..33] {
            a.record(x);
        }
        for &x in &data[33..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(3.0);
        let b = Summary::new();
        let snapshot = a.clone();
        a.merge(&b);
        assert_eq!(a, snapshot);
        let mut c = Summary::new();
        c.merge(&snapshot);
        assert_eq!(c, snapshot);
    }

    #[test]
    fn summary_failures_survive_merge_even_with_no_observations() {
        let mut a = Summary::new();
        a.record_failure();
        a.record_failure();
        let mut b = Summary::new();
        b.record(5.0);
        b.record_failure();
        a.merge(&b);
        assert_eq!(a.failures(), 3);
        assert_eq!(a.count(), 1, "failures do not count as observations");
        assert_eq!(a.mean(), 5.0);

        // merging an all-failure summary into a populated one
        let mut c = Summary::new();
        c.record(1.0);
        let mut d = Summary::new();
        d.record_failure();
        c.merge(&d);
        assert_eq!(c.failures(), 1);
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn summary_mean_is_exact_total_over_count() {
        // Integer-valued observations: mean must equal total/count bitwise
        // regardless of how the sample was split and merged.
        let data: Vec<f64> = (0..1000).map(|i| (i % 17) as f64).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        for split in [1usize, 3, 7, 100] {
            let mut merged = Summary::new();
            for chunk in data.chunks(data.len().div_ceil(split)) {
                let mut part = Summary::new();
                for &x in chunk {
                    part.record(x);
                }
                merged.merge(&part);
            }
            assert_eq!(merged.count(), whole.count());
            assert_eq!(merged.total().to_bits(), whole.total().to_bits());
            assert_eq!(merged.mean().to_bits(), whole.mean().to_bits());
            assert_eq!(merged.min().to_bits(), whole.min().to_bits());
            assert_eq!(merged.max().to_bits(), whole.max().to_bits());
        }
    }

    #[test]
    fn load_dist_percentiles_cached_and_consistent() {
        let d = LoadDist::from_counts(&[9, 1, 5, 3, 7, 2, 8, 4, 6, 0]);
        // repeated queries hit the cached sort and stay identical
        let first = (d.p1(), d.p99());
        let second = (d.p1(), d.p99());
        assert_eq!(first, second);
        assert_eq!(d.percentile(50.0), 4.0);
        assert_eq!(d.percentile(100.0), 9.0);
        // a clone keeps working (cache may or may not be carried over)
        let e = d.clone();
        assert_eq!((e.p1(), e.p99()), first);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(p.percentile(1.0), 1.0);
        assert_eq!(p.percentile(50.0), 50.0);
        assert_eq!(p.percentile(99.0), 99.0);
        assert_eq!(p.percentile(100.0), 100.0);
        assert_eq!(p.percentile(0.0), 1.0);
    }

    #[test]
    fn percentiles_small_sample() {
        let p = Percentiles::from_samples(vec![10.0]);
        assert_eq!(p.percentile(1.0), 10.0);
        assert_eq!(p.percentile(99.0), 10.0);
        assert_eq!(p.median(), 10.0);
    }

    #[test]
    fn percentiles_empty_is_nan() {
        let p = Percentiles::from_samples(vec![]);
        assert!(p.percentile(50.0).is_nan());
        assert!(p.is_empty());
    }

    #[test]
    fn percentiles_rank_edges() {
        // p = 0 must answer the minimum without asking for rank 0, and
        // p = 100 the maximum without running past the end; out-of-range
        // p clamps rather than panicking or extrapolating.
        let p = Percentiles::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(p.percentile(0.0), 1.0);
        assert_eq!(p.percentile(100.0), 3.0);
        assert_eq!(p.percentile(-5.0), 1.0);
        assert_eq!(p.percentile(250.0), 3.0);
        // Single sample: every percentile is that sample.
        let one = Percentiles::from_samples(vec![42.0]);
        assert_eq!(one.percentile(0.0), 42.0);
        assert_eq!(one.percentile(100.0), 42.0);
        // A NaN percentile argument clamps to 0 (minimum), not a panic.
        assert_eq!(p.percentile(f64::NAN), 1.0);
    }

    #[test]
    fn percentiles_nan_samples_sort_last() {
        // total_cmp orders NaN above every real value: low/median ranks
        // stay real, only the top rank reports the NaN.
        let p = Percentiles::from_samples(vec![f64::NAN, 1.0, 2.0, 3.0]);
        assert_eq!(p.percentile(0.0), 1.0);
        assert_eq!(p.median(), 2.0);
        assert_eq!(p.percentile(75.0), 3.0);
        assert!(p.percentile(100.0).is_nan());
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn percentiles_unsorted_input() {
        let p = Percentiles::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(p.median(), 3.0);
        assert_eq!(p.percentile(100.0), 5.0);
    }

    #[test]
    fn load_dist_basics() {
        let d = LoadDist::from_counts(&[0, 0, 10, 10]);
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.total(), 20.0);
        assert_eq!(d.p1(), 0.0);
        assert_eq!(d.p99(), 10.0);
        assert_eq!(d.max(), 10.0);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn load_dist_cv_zero_for_uniform() {
        let d = LoadDist::new(vec![4.0; 16]);
        assert_eq!(d.cv(), 0.0);
    }

    #[test]
    fn load_dist_cv_positive_for_skew() {
        let d = LoadDist::new(vec![0.0, 0.0, 0.0, 100.0]);
        assert!(d.cv() > 1.0);
    }

    #[test]
    fn load_dist_empty() {
        let d = LoadDist::new(vec![]);
        assert_eq!(d.mean(), 0.0);
        assert!(d.is_empty());
    }

    #[test]
    fn histogram_records_and_counts() {
        let mut h = Histogram::new(10);
        for x in [1, 1, 2, 5, 12] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket(1), Some(2));
        assert_eq!(h.bucket(3), Some(0));
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn histogram_cdf_and_quantile() {
        let mut h = Histogram::new(10);
        for x in 0..10 {
            h.record(x);
        }
        assert!((h.cdf(4) - 0.5).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(1.0), Some(9));
        assert_eq!(h.quantile(0.0), Some(0));
    }

    #[test]
    fn histogram_mode_and_entries() {
        let mut h = Histogram::new(8);
        for x in [3, 3, 3, 5, 5, 7] {
            h.record(x);
        }
        assert_eq!(h.mode(), Some(3));
        let e: Vec<_> = h.entries().collect();
        assert_eq!(e, vec![(Some(3), 3), (Some(5), 2), (Some(7), 1)]);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new(4);
        assert_eq!(h.cdf(3), 0.0);
        assert_eq!(h.mode(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_overflow_blocks_quantile() {
        let mut h = Histogram::new(2);
        h.record(0);
        h.record(99);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(0.9), None, "90th percentile sits in overflow");
        let e: Vec<_> = h.entries().collect();
        assert_eq!(e.last(), Some(&(None, 1)));
    }
}
