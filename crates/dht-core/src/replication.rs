//! Replica placement and repair primitives.
//!
//! The durability layer follows the replicated-DHT model of Leslie et
//! al., "Reliable Data Storage in Distributed Hash Tables": each stored
//! piece lives on its owner plus `k - 1` replica holders drawn from the
//! owner's neighbor set (successor list on Chord, leaf set / cluster on
//! Cycloid), and the periodic maintenance round *repairs* replication —
//! promotes copies whose primary died and re-copies under-replicated
//! pieces — paying bandwidth that this module's [`RepairStats`] accounts
//! in the same additive style as [`crate::Summary`].
//!
//! Placement itself is a pure prefix rule over a neighbor ordering
//! ([`replica_targets`]): the target set at degree `k` is a prefix of the
//! target set at `k + 1`. Combined with repair that only ever *adds*
//! copies, piece survival is monotone in `k` along every churn
//! trajectory — the property the durability sweep asserts per cell.

use crate::overlay::NodeIdx;

/// Additive counters for replica maintenance work, merged across rounds
/// and systems exactly like [`crate::Summary`]. Each copy or promotion
/// stands for one piece shipped over the network during repair, so the
/// totals are the repair *bandwidth* of the run (in pieces).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    rounds: u64,
    copies: u64,
    promotions: u64,
    dropped: u64,
}

impl RepairStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one completed repair round.
    pub fn record_round(&mut self) {
        self.rounds += 1;
    }

    /// Count one replica copied to an under-replicated holder.
    pub fn record_copy(&mut self) {
        self.copies += 1;
    }

    /// Count one replica promoted to a new primary after its old primary
    /// died (one piece shipped, like a copy, but restoring the *primary*).
    pub fn record_promotion(&mut self) {
        self.promotions += 1;
    }

    /// Count one stale replica entry discarded without a transfer (its
    /// primary departed but the piece already lives at the new owner).
    pub fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &RepairStats) {
        self.rounds += other.rounds;
        self.copies += other.copies;
        self.promotions += other.promotions;
        self.dropped += other.dropped;
    }

    /// Repair rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Replica copies shipped.
    pub fn copies(&self) -> u64 {
        self.copies
    }

    /// Replica promotions shipped.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Stale replica entries dropped without a transfer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total pieces shipped during repair (copies + promotions).
    pub fn transfers(&self) -> u64 {
        self.copies + self.promotions
    }
}

/// Append up to `k - 1` replica targets for the member at `owner_pos` of
/// a cyclic neighbor ordering: the next distinct members after the owner,
/// wrapping around, never including the owner itself.
///
/// The result at degree `k` is always a prefix of the result at `k + 1`
/// (shorter only when the ordering has fewer than `k` members), which is
/// what makes piece survival monotone in `k`.
pub fn replica_targets(ring: &[NodeIdx], owner_pos: usize, k: usize, out: &mut Vec<NodeIdx>) {
    if k <= 1 || ring.len() <= 1 || owner_pos >= ring.len() {
        return;
    }
    let want = (k - 1).min(ring.len() - 1);
    for step in 1..=want {
        out.push(ring[(owner_pos + step) % ring.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<NodeIdx> {
        (0..n).map(NodeIdx).collect()
    }

    #[test]
    fn targets_are_next_members_with_wraparound() {
        let r = ring(5);
        let mut out = Vec::new();
        replica_targets(&r, 3, 3, &mut out);
        assert_eq!(out, vec![NodeIdx(4), NodeIdx(0)]);
    }

    #[test]
    fn degree_one_and_singleton_rings_place_nothing() {
        let r = ring(4);
        let mut out = Vec::new();
        replica_targets(&r, 0, 1, &mut out);
        assert!(out.is_empty());
        replica_targets(&ring(1), 0, 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn targets_nest_as_prefixes_across_degrees() {
        let r = ring(7);
        let mut prev = Vec::new();
        for k in 1..=7 {
            let mut cur = Vec::new();
            replica_targets(&r, 2, k, &mut cur);
            assert!(cur.starts_with(&prev), "k={k}: {cur:?} vs {prev:?}");
            prev = cur;
        }
        assert_eq!(prev.len(), 6, "capped at ring size minus the owner");
    }

    #[test]
    fn small_rings_cap_at_available_peers() {
        let r = ring(3);
        let mut out = Vec::new();
        replica_targets(&r, 1, 4, &mut out);
        assert_eq!(out, vec![NodeIdx(2), NodeIdx(0)]);
    }

    #[test]
    fn repair_stats_merge_is_additive() {
        let mut a = RepairStats::new();
        a.record_round();
        a.record_copy();
        a.record_copy();
        a.record_promotion();
        let mut b = RepairStats::new();
        b.record_round();
        b.record_dropped();
        a.merge(&b);
        assert_eq!(a.rounds(), 2);
        assert_eq!(a.copies(), 2);
        assert_eq!(a.promotions(), 1);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.transfers(), 3);
    }
}
