//! Workload samplers and deterministic RNG plumbing.
//!
//! The paper's evaluation (§V) generates resource values "owned by a node
//! and requested by a node" from a **Bounded Pareto** distribution, picks
//! query attributes uniformly at random, and models churn as a Poisson
//! process. This module implements those samplers from first principles on
//! top of `rand::SmallRng` so the only external dependency is the sanctioned
//! `rand` crate and every draw is reproducible from a seed.

use crate::error::DhtError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Spawns independent, deterministic RNG streams from one experiment seed.
///
/// Each subsystem (workload, churn, query mix, …) gets its own stream so
/// that changing how many draws one subsystem makes does not perturb the
/// others — a standard trick for variance-controlled simulation studies.
#[derive(Debug, Clone)]
pub struct SeedSpawner {
    seed: u64,
    next_stream: u64,
}

impl SeedSpawner {
    /// Create a spawner from a root experiment seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, next_stream: 0 }
    }

    /// Spawn the next independent RNG stream.
    pub fn spawn(&mut self) -> SmallRng {
        let stream = self.next_stream;
        self.next_stream += 1;
        self.labelled(stream)
    }

    /// Spawn a stream identified by an explicit label (stable across code
    /// changes that add or remove other streams).
    pub fn labelled(&self, label: u64) -> SmallRng {
        let s = crate::hashing::splitmix64(self.seed ^ label.wrapping_mul(0x9e3779b97f4a7c15));
        SmallRng::seed_from_u64(s)
    }

    /// The root seed this spawner was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Bounded Pareto distribution on `[low, high]` with shape `alpha`.
///
/// Sampled by inverse-CDF:
/// `x = L * (1 - U * (1 - (L/H)^alpha))^(-1/alpha)`.
///
/// This is the distribution the paper uses to generate attribute values; a
/// small `alpha` concentrates mass near `low`, which is exactly what makes
/// locality-preserving placement imbalanced (the effect visible in the 99th
/// percentile curves of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    low: f64,
    high: f64,
    /// Precomputed `1 - (L/H)^alpha`.
    norm: f64,
}

impl BoundedPareto {
    /// Construct the distribution.
    ///
    /// # Errors
    /// [`DhtError::InvalidParameter`] if `alpha <= 0`, `low <= 0`, or
    /// `low >= high`.
    // `!(x > 0.0)` deliberately rejects NaN along with non-positives.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(alpha: f64, low: f64, high: f64) -> Result<Self, DhtError> {
        if !(alpha > 0.0) {
            return Err(DhtError::InvalidParameter { what: "BoundedPareto alpha must be > 0" });
        }
        if !(low > 0.0) {
            return Err(DhtError::InvalidParameter { what: "BoundedPareto low must be > 0" });
        }
        if !(low < high) || !high.is_finite() {
            return Err(DhtError::InvalidParameter {
                what: "BoundedPareto requires low < high < inf",
            });
        }
        let norm = 1.0 - (low / high).powf(alpha);
        Ok(Self { alpha, low, high, norm })
    }

    /// Shape parameter `alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower bound `L`.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound `H`.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let x = self.low * (1.0 - u * self.norm).powf(-1.0 / self.alpha);
        x.clamp(self.low, self.high)
    }

    /// Cumulative distribution function (used by tests and analysis).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.low {
            0.0
        } else if x >= self.high {
            1.0
        } else {
            (1.0 - (self.low / x).powf(self.alpha)) / self.norm
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Used by the ablation workloads (skewed attribute popularity). Sampling
/// is by binary search over the precomputed CDF; construction is `O(n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Construct a Zipf distribution over `n` ranks with exponent `s >= 0`.
    ///
    /// # Errors
    /// [`DhtError::InvalidParameter`] if `n == 0` or `s` is negative/NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
    pub fn new(n: usize, s: f64) -> Result<Self, DhtError> {
        if n == 0 {
            return Err(DhtError::InvalidParameter { what: "Zipf requires n >= 1" });
        }
        if !(s >= 0.0) {
            return Err(DhtError::InvalidParameter { what: "Zipf exponent must be >= 0" });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            // lint:allow(float-accumulate): single sequential loop in rank
            // order — the summation order *is* the CDF's definition.
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution has no ranks (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n` (0-based; rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Sample an exponential inter-arrival time with the given rate (events per
/// unit time). The building block of the Poisson churn process of §V.C.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn spawner_streams_are_independent_and_deterministic() {
        let mut a = SeedSpawner::new(7);
        let mut b = SeedSpawner::new(7);
        let x: u64 = a.spawn().gen();
        let y: u64 = b.spawn().gen();
        assert_eq!(x, y, "same seed, same stream order => same draws");
        let z: u64 = a.spawn().gen();
        assert_ne!(x, z, "different streams differ");
    }

    #[test]
    fn spawner_labelled_is_stable() {
        let s = SeedSpawner::new(99);
        let a: u64 = s.labelled(3).gen();
        let b: u64 = s.labelled(3).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn pareto_rejects_bad_params() {
        assert!(BoundedPareto::new(0.0, 1.0, 10.0).is_err());
        assert!(BoundedPareto::new(1.0, 0.0, 10.0).is_err());
        assert!(BoundedPareto::new(1.0, 10.0, 10.0).is_err());
        assert!(BoundedPareto::new(1.0, 10.0, f64::INFINITY).is_err());
    }

    #[test]
    fn pareto_samples_in_bounds() {
        let d = BoundedPareto::new(1.0, 1.0, 500.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=500.0).contains(&x));
        }
    }

    #[test]
    fn pareto_is_skewed_towards_low() {
        let d = BoundedPareto::new(1.0, 1.0, 500.0).unwrap();
        let mut r = rng();
        let below_median_point = (0..20_000).filter(|_| d.sample(&mut r) < 250.5).count();
        // With alpha=1 the overwhelming majority of mass is near `low`.
        assert!(below_median_point > 18_000, "got {below_median_point}");
    }

    #[test]
    fn pareto_cdf_matches_empirical() {
        let d = BoundedPareto::new(1.2, 1.0, 500.0).unwrap();
        let mut r = rng();
        let n = 50_000;
        let hits = (0..n).filter(|_| d.sample(&mut r) <= 10.0).count();
        let emp = hits as f64 / n as f64;
        let theory = d.cdf(10.0);
        assert!((emp - theory).abs() < 0.01, "emp={emp} theory={theory}");
    }

    #[test]
    fn pareto_cdf_endpoints() {
        let d = BoundedPareto::new(2.0, 2.0, 8.0).unwrap();
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(2.0), 0.0);
        assert_eq!(d.cdf(8.0), 1.0);
        assert_eq!(d.cdf(100.0), 1.0);
        assert!(d.cdf(4.0) > 0.5); // most mass near low end
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }

    #[test]
    fn zipf_skews_to_rank_zero() {
        let z = Zipf::new(100, 1.2).unwrap();
        let mut r = rng();
        let mut c0 = 0;
        let mut c50 = 0;
        for _ in 0..50_000 {
            match z.sample(&mut r) {
                0 => c0 += 1,
                50 => c50 += 1,
                _ => {}
            }
        }
        assert!(c0 > 10 * c50.max(1), "c0={c0} c50={c50}");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 0.8).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 7);
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let rate = 0.4;
        let n = 100_000;
        let total: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.05, "mean={mean}");
    }
}
