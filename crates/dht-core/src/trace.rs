//! Hop-accurate routing traces.
//!
//! The paper measures *logical hops* (nodes a lookup message traverses) and
//! *visited nodes* (nodes that receive a query and check their directory).
//! [`RouteResult`] records a single lookup's path; [`LookupTally`]
//! aggregates the per-query totals a figure reports.

use crate::overlay::NodeIdx;

/// The outcome of routing one message through an overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResult {
    /// Every node the message passed through, *excluding* the origin and
    /// *including* the terminal node. `path.len()` is therefore the hop
    /// count of the lookup.
    pub path: Vec<NodeIdx>,
    /// The node at which routing terminated (the root of the key).
    pub terminal: NodeIdx,
    /// Whether routing converged to the true root of the key. Under churn
    /// a lookup can land on a stale node; the simulators report rather than
    /// hide this.
    pub exact: bool,
}

impl RouteResult {
    /// A route that terminated at the origin without any hop (origin is
    /// itself the root).
    pub fn local(origin: NodeIdx) -> Self {
        Self { path: Vec::new(), terminal: origin, exact: true }
    }

    /// Number of logical hops taken (0 when the origin owned the key).
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

/// Allocation-free summary of one routed lookup — the fast-path twin of
/// [`RouteResult`] for the hot loops (figures 4/5/6, maintenance, churn)
/// that consume only the hop count and the terminal node and must not pay
/// a `Vec` per lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteStats {
    /// Number of logical hops taken (0 when the origin owned the key).
    pub hops: usize,
    /// The node at which routing terminated (the root of the key).
    pub terminal: NodeIdx,
    /// Whether routing converged to the true root of the key.
    pub exact: bool,
}

impl RouteStats {
    /// A route that terminated at the origin without any hop.
    pub fn local(origin: NodeIdx) -> Self {
        Self { hops: 0, terminal: origin, exact: true }
    }
}

/// Verdict on one forwarding step, produced by [`RouteSink::forward`].
///
/// The fault-free sinks always answer [`Forward::Deliver`]; the
/// fault-injecting wrapper ([`FaultSink`](crate::fault::FaultSink))
/// consults its [`FaultPlan`](crate::fault::FaultPlan) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forward {
    /// The message reaches the next node.
    Deliver,
    /// The message is lost in transit (per-message drop coin fired).
    Dropped,
    /// The next node has failed ungracefully; the forwarding link is a
    /// stale finger / leaf-set entry and the message dies there.
    DeadHop,
}

/// Observer of routing hops: the same routing loop serves the traced
/// variant (recording into a `Vec<NodeIdx>` path) and the zero-allocation
/// fast path (a bare [`HopCount`]), so the two can never diverge.
pub trait RouteSink {
    /// Record one forwarding hop.
    fn visit(&mut self, hop: NodeIdx);
    /// Hops recorded so far (drives the routing-loop budget).
    fn hops(&self) -> usize;
    /// Judge a forwarding to `next` *before* it is recorded. The routing
    /// loops ask this ahead of every `visit`; the default delivers
    /// unconditionally, so plain sinks are byte-identical to the
    /// pre-fault-injection behaviour.
    fn forward(&mut self, next: NodeIdx) -> Forward {
        let _ = next;
        Forward::Deliver
    }
}

impl RouteSink for Vec<NodeIdx> {
    fn visit(&mut self, hop: NodeIdx) {
        self.push(hop);
    }

    fn hops(&self) -> usize {
        self.len()
    }
}

/// Zero-allocation hop counter — the [`RouteSink`] behind
/// [`RouteStats`](crate::overlay::Overlay::route_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopCount(usize);

impl HopCount {
    /// Hops counted.
    pub fn get(self) -> usize {
        self.0
    }
}

impl RouteSink for HopCount {
    fn visit(&mut self, _hop: NodeIdx) {
        self.0 += 1;
    }

    fn hops(&self) -> usize {
        self.0
    }
}

/// Aggregated cost of resolving one (possibly multi-attribute) query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupTally {
    /// Total logical *lookup* routing hops over all sub-queries. Range
    /// walks are accounted in `visited` (each probe is itself one
    /// forwarding message), so `hops + visited` is the paper's
    /// "contacted nodes" metric (Theorem 4.10).
    pub hops: usize,
    /// Number of DHT lookups issued (the paper counts one per attribute for
    /// LORM/Mercury/SWORD and two per attribute for MAAN).
    pub lookups: usize,
    /// Nodes that received the query and checked their directory —
    /// the roots plus every node probed while walking a range.
    pub visited: usize,
    /// Resource-information pieces returned to the requester.
    pub matches: usize,
}

impl LookupTally {
    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: LookupTally) {
        self.hops += other.hops;
        self.lookups += other.lookups;
        self.visited += other.visited;
        self.matches += other.matches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_route_has_zero_hops() {
        let r = RouteResult::local(NodeIdx(3));
        assert_eq!(r.hops(), 0);
        assert_eq!(r.terminal, NodeIdx(3));
        assert!(r.exact);
    }

    #[test]
    fn hops_counts_path_length() {
        let r = RouteResult {
            path: vec![NodeIdx(1), NodeIdx(2), NodeIdx(5)],
            terminal: NodeIdx(5),
            exact: true,
        };
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn tally_absorb_sums_fields() {
        let mut a = LookupTally { hops: 3, lookups: 1, visited: 2, matches: 4 };
        let b = LookupTally { hops: 5, lookups: 2, visited: 1, matches: 0 };
        a.absorb(b);
        assert_eq!(a, LookupTally { hops: 8, lookups: 3, visited: 3, matches: 4 });
    }

    #[test]
    fn tally_default_is_zero() {
        let t = LookupTally::default();
        assert_eq!(t.hops + t.lookups + t.visited + t.matches, 0);
    }

    #[test]
    fn local_stats_have_zero_hops() {
        let s = RouteStats::local(NodeIdx(9));
        assert_eq!(s, RouteStats { hops: 0, terminal: NodeIdx(9), exact: true });
    }

    #[test]
    fn hop_count_sink_counts_without_storing() {
        let mut h = HopCount::default();
        h.visit(NodeIdx(1));
        h.visit(NodeIdx(2));
        assert_eq!(h.hops(), 2);
        assert_eq!(h.get(), 2);
    }

    #[test]
    fn vec_sink_records_the_path() {
        let mut v: Vec<NodeIdx> = Vec::new();
        v.visit(NodeIdx(4));
        v.visit(NodeIdx(7));
        assert_eq!(RouteSink::hops(&v), 2);
        assert_eq!(v, vec![NodeIdx(4), NodeIdx(7)]);
    }
}
