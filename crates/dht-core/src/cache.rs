//! Epoch-invalidated route cache — memoized routing over a static bed.
//!
//! Every figure pipeline re-routes thousands of sub-queries against an
//! overlay that is *static between churn events*: routing is a pure
//! function of `(overlay state, from, key)`, so the second identical
//! lookup can answer from memory. D1HT makes the general point that
//! trading memory for hops is the highest-leverage lever in DHT lookup
//! cost; this cache applies it to the simulator itself.
//!
//! Correctness is *by construction*, not by probabilistic tagging:
//!
//! * Entries store the **full** `(salt, from, key)` triple and compare it
//!   exactly on lookup — a slot-index collision evicts, it can never
//!   produce a false hit.
//! * Entries are stamped with the overlay [`epoch`](crate::Overlay::epoch)
//!   at insert time. Every mutating overlay operation strictly increases
//!   the epoch (enforced by the `epoch-bump` lint and proptests), so an
//!   entry whose stamp differs from the current epoch is a miss. Between
//!   equal epoch observations the overlay is bit-identical, hence so is
//!   the route the cache replays.
//!
//! Storage is a flat, direct-mapped slot array (power-of-two length,
//! SplitMix64 slot hash) — no hash maps, so the `hash-collections` lint
//! stays clean and lookups are one predictable probe. Slots are packed
//! into `u64` words so construction takes the `alloc_zeroed` fast path:
//! a fresh cache maps lazy zero pages and the executors can afford one
//! cache per worker thread.
//!
//! Alongside full-route results the cache stores **walk segments**: the
//! `(node, distance)` sequence a range walk emits from a given start node
//! for a `[lo, lo+span]` segment. Walk admission is monotone in the
//! distance from `lo`, so a narrower query replays as a take-while prefix
//! of a cached wider walk under the walker's own stop rule (strict `<`
//! for ring walks, inclusive `<=` for LORM cluster walks). Only
//! rule-terminated walks are cached — a budget-truncated walk is not a
//! prefix-safe superset of anything.

use crate::error::DhtError;
use crate::hashing::splitmix64;
use crate::overlay::{NodeIdx, Overlay};
use crate::trace::RouteStats;

/// Direct-mapped route slots (power of two). ~32k entries cover the quick
/// figure workloads (hundreds of origins x tens of attribute keys) with
/// negligible conflict eviction, at ~1.5 MiB of *address space* per cache
/// (zero pages, faulted in only as slots are actually written).
const ROUTE_SLOTS: usize = 1 << 15;

/// Direct-mapped walk headers (power of two).
const WALK_HEADS: usize = 1 << 12;

/// Walk-step arena capacity. Crossing it resets the walk side of the
/// cache wholesale — deterministic, since the reset point depends only on
/// the insert sequence, never on wall-clock or addresses.
const WALK_ARENA_CAP: usize = 1 << 20;

/// One emitted step of a range walk: the visited node and its (monotone)
/// walk distance from the segment's `lo` anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// The node the walk visited.
    pub node: NodeIdx,
    /// Clockwise (or cyclic) distance of `node` from the walk's `lo`
    /// anchor — the quantity the walker's stop rule tests.
    pub dist: u64,
}

/// Words per packed route slot: `[salt, from, key, epoch, hops<<1|exact,
/// terminal]`. An all-zero slot is empty — overlay epochs start at 1
/// (construction itself mutates state), so a zero stamp never matches.
const ROUTE_WORDS: usize = 6;

/// Words per packed walk head: `[salt, start, lo, epoch, span, off, len]`.
/// `span` is the span the cached walk was run for — a query with
/// `span <= this` replays as a prefix; a wider query is a miss (and
/// re-inserts).
const WALK_WORDS: usize = 7;

/// Deterministic, epoch-invalidated cache of [`RouteStats`] results and
/// range-walk segments.
///
/// One cache serves one system's query stream (multiple overlays are
/// namespaced by the `salt` argument — e.g. the hub index for Mercury's
/// per-attribute rings). Sharing is by `&mut`; the batched executor owns
/// one per worker, which is what keeps sharded results byte-identical.
#[derive(Debug, Clone)]
pub struct RouteCache {
    /// Packed route slots ([`ROUTE_WORDS`] words each). Flat `u64` arrays
    /// take the `alloc_zeroed` fast path, so a fresh cache maps lazy zero
    /// pages instead of writing megabytes of empty slots — constructing
    /// per-worker caches is O(1) actual memory traffic.
    routes: Vec<u64>,
    /// Packed walk heads ([`WALK_WORDS`] words each).
    heads: Vec<u64>,
    arena: Vec<WalkStep>,
    /// Two-touch admission fingerprints (see [`Self::admit_walk`]): a walk
    /// is only *recorded* once its key has been seen before, so streams
    /// whose keys never repeat skip the recording copy entirely.
    cand: Vec<u64>,
    hits: u64,
    misses: u64,
    walk_hits: u64,
    walk_misses: u64,
    walk_resets: u64,
    /// Reusable recording buffer for walk misses (see [`Self::begin_walk`]):
    /// keeps the steady-state miss path allocation-free.
    scratch: Vec<WalkStep>,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteCache {
    /// An empty cache with the default slot geometry.
    pub fn new() -> Self {
        Self {
            routes: vec![0; ROUTE_WORDS * ROUTE_SLOTS],
            heads: vec![0; WALK_WORDS * WALK_HEADS],
            arena: Vec::new(),
            cand: vec![0; WALK_HEADS],
            hits: 0,
            misses: 0,
            walk_hits: 0,
            walk_misses: 0,
            walk_resets: 0,
            scratch: Vec::new(),
        }
    }

    /// Take the cleared walk-recording scratch buffer. Walkers fill it on
    /// a miss and hand it back through [`Self::commit_walk`], so repeated
    /// misses reuse one allocation.
    pub fn begin_walk(&mut self) -> Vec<WalkStep> {
        let mut buf = core::mem::take(&mut self.scratch);
        buf.clear();
        buf
    }

    /// Insert a recorded walk (see [`Self::walk_insert`] for the caching
    /// contract) and return the recording buffer to the scratch pool.
    pub fn commit_walk(
        &mut self,
        salt: u64,
        start: NodeIdx,
        lo: u64,
        span: u64,
        epoch: u64,
        steps: Vec<WalkStep>,
    ) {
        self.walk_insert(salt, start, lo, span, epoch, &steps);
        self.scratch = steps;
    }

    #[inline]
    fn route_slot(salt: u64, from: u64, key: u64) -> usize {
        let h = splitmix64(salt ^ splitmix64(from ^ splitmix64(key)));
        (h & (ROUTE_SLOTS as u64 - 1)) as usize
    }

    #[inline]
    fn walk_slot(salt: u64, start: u64, lo: u64) -> usize {
        let h = splitmix64(salt.rotate_left(17) ^ splitmix64(start ^ splitmix64(lo)));
        (h & (WALK_HEADS as u64 - 1)) as usize
    }

    /// Look up a cached route. A hit requires the full `(salt, from, key)`
    /// triple to match *and* the stamp to equal the overlay's current
    /// `epoch` — anything else is a miss.
    pub fn lookup(&mut self, salt: u64, from: NodeIdx, key: u64, epoch: u64) -> Option<RouteStats> {
        let from = from.index() as u64;
        let b = Self::route_slot(salt, from, key) * ROUTE_WORDS;
        let s = &self.routes[b..b + ROUTE_WORDS];
        if s[3] == epoch && s[0] == salt && s[1] == from && s[2] == key {
            self.hits += 1;
            Some(RouteStats {
                hops: (s[4] >> 1) as usize,
                terminal: NodeIdx(s[5] as usize),
                exact: s[4] & 1 == 1,
            })
        } else {
            self.misses += 1;
            None
        }
    }

    /// Store a route result under the overlay's current epoch. Conflicting
    /// entries are evicted (direct-mapped).
    pub fn insert(&mut self, salt: u64, from: NodeIdx, key: u64, epoch: u64, stats: RouteStats) {
        let from = from.index() as u64;
        let b = Self::route_slot(salt, from, key) * ROUTE_WORDS;
        self.routes[b..b + ROUTE_WORDS].copy_from_slice(&[
            salt,
            from,
            key,
            epoch,
            ((stats.hops as u64) << 1) | u64::from(stats.exact),
            stats.terminal.index() as u64,
        ]);
    }

    /// Look up a cached walk segment from `start` anchored at `lo`. Hits
    /// require an exact `(salt, start, lo)` and epoch match and a cached
    /// span at least as wide as `span`; the caller replays the returned
    /// steps through its own stop rule (take-while on `dist`), which
    /// truncates a wider cached walk to exactly the uncached emission.
    pub fn walk_lookup(
        &mut self,
        salt: u64,
        start: NodeIdx,
        lo: u64,
        span: u64,
        epoch: u64,
    ) -> Option<&[WalkStep]> {
        let start = start.index() as u64;
        let b = Self::walk_slot(salt, start, lo) * WALK_WORDS;
        let h = &self.heads[b..b + WALK_WORDS];
        if h[3] == epoch && h[0] == salt && h[1] == start && h[2] == lo && h[4] >= span {
            self.walk_hits += 1;
            let (off, len) = (h[5] as usize, h[6] as usize);
            Some(&self.arena[off..off + len])
        } else {
            self.walk_misses += 1;
            None
        }
    }

    /// Two-touch walk admission: should a missed walk be *recorded*?
    ///
    /// Recording a walk costs a per-step copy on top of the walk itself —
    /// pure overhead when the key never repeats (e.g. range bounds drawn
    /// from a continuous distribution). So a walk is only recorded the
    /// *second* time its `(salt, start, lo, epoch)` fingerprint lands in
    /// its slot: the first sighting stamps a candidate fingerprint and
    /// runs the walk plain. Fingerprints are full 64-bit (forced nonzero),
    /// so an accidental match merely records one extra walk — it can never
    /// corrupt a result. The policy is a pure function of the lookup
    /// sequence, so admission (and therefore the hit-rate telemetry) is
    /// deterministic.
    pub fn admit_walk(&mut self, salt: u64, start: NodeIdx, lo: u64, epoch: u64) -> bool {
        let start = start.index() as u64;
        let fp = splitmix64(salt ^ splitmix64(start ^ splitmix64(lo ^ splitmix64(epoch)))) | 1;
        let slot = &mut self.cand[Self::walk_slot(salt, start, lo)];
        if *slot == fp {
            true
        } else {
            *slot = fp;
            false
        }
    }

    /// Cache a *rule-terminated* walk's emission. Callers must not insert
    /// budget-truncated walks: those are not prefix-safe supersets of
    /// narrower queries. Crossing the arena capacity resets the walk side
    /// wholesale (deterministically).
    pub fn walk_insert(
        &mut self,
        salt: u64,
        start: NodeIdx,
        lo: u64,
        span: u64,
        epoch: u64,
        steps: &[WalkStep],
    ) {
        if steps.len() > WALK_ARENA_CAP {
            return; // never cacheable; don't thrash the arena
        }
        if self.arena.len() + steps.len() > WALK_ARENA_CAP {
            self.arena.clear();
            self.heads.fill(0);
            self.walk_resets += 1;
        }
        let off = self.arena.len();
        self.arena.extend_from_slice(steps);
        let start = start.index() as u64;
        let b = Self::walk_slot(salt, start, lo) * WALK_WORDS;
        self.heads[b..b + WALK_WORDS].copy_from_slice(&[
            salt,
            start,
            lo,
            epoch,
            span,
            off as u64,
            steps.len() as u64,
        ]);
    }

    /// Route lookups answered from cache since the last counter reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Route lookups that had to route for real since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Walk lookups answered from cache since the last counter reset.
    pub fn walk_hits(&self) -> u64 {
        self.walk_hits
    }

    /// Walk lookups that had to walk for real since the last reset.
    pub fn walk_misses(&self) -> u64 {
        self.walk_misses
    }

    /// Combined (route + walk) hit fraction, `None` before any lookup.
    /// Counters observe the cache without influencing any result, so the
    /// rate is deterministic for a deterministic query stream.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses + self.walk_hits + self.walk_misses;
        if total == 0 {
            None
        } else {
            Some((self.hits + self.walk_hits) as f64 / total as f64)
        }
    }

    /// Zero the hit/miss counters, keeping every cached entry. The perf
    /// harness warms the cache, resets, then measures exactly one pass so
    /// the reported hit rate is machine-independent.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.walk_hits = 0;
        self.walk_misses = 0;
        self.walk_resets = 0;
    }

    /// Drop every cached entry and zero the counters.
    pub fn clear(&mut self) {
        self.routes.fill(0);
        self.heads.fill(0);
        self.cand.fill(0);
        self.arena.clear();
        self.reset_counters();
    }
}

/// Route `key` from `from` through the cache: answer from a fresh-epoch
/// entry when present, otherwise route for real and memoize the result.
/// Byte-identical to `overlay.route_stats(from, key)` by construction.
pub fn route_stats_cached<O: Overlay>(
    overlay: &O,
    from: NodeIdx,
    key: O::Key,
    salt: u64,
    cache: &mut RouteCache,
) -> Result<RouteStats, DhtError> {
    let bits = overlay.key_bits(key);
    let epoch = overlay.epoch();
    if let Some(stats) = cache.lookup(salt, from, bits, epoch) {
        return Ok(stats);
    }
    let stats = overlay.route_stats(from, key)?;
    cache.insert(salt, from, bits, epoch, stats);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(hops: usize, t: usize) -> RouteStats {
        RouteStats { hops, terminal: NodeIdx(t), exact: true }
    }

    #[test]
    fn route_roundtrip_and_epoch_invalidation() {
        let mut c = RouteCache::new();
        assert_eq!(c.lookup(1, NodeIdx(4), 99, 7), None);
        c.insert(1, NodeIdx(4), 99, 7, stats(3, 11));
        assert_eq!(c.lookup(1, NodeIdx(4), 99, 7), Some(stats(3, 11)));
        // any epoch drift is a miss — older or newer
        assert_eq!(c.lookup(1, NodeIdx(4), 99, 8), None);
        assert_eq!(c.lookup(1, NodeIdx(4), 99, 6), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn full_key_comparison_never_false_hits() {
        let mut c = RouteCache::new();
        c.insert(1, NodeIdx(4), 99, 7, stats(3, 11));
        assert_eq!(c.lookup(2, NodeIdx(4), 99, 7), None, "salt differs");
        assert_eq!(c.lookup(1, NodeIdx(5), 99, 7), None, "origin differs");
        assert_eq!(c.lookup(1, NodeIdx(4), 98, 7), None, "key differs");
    }

    #[test]
    fn conflicting_insert_evicts() {
        // Force a slot conflict by brute-forcing two keys that collide.
        let target = RouteCache::route_slot(0, 0, 0);
        let other = (1..).find(|&k| RouteCache::route_slot(0, 0, k) == target).unwrap();
        let mut c = RouteCache::new();
        c.insert(0, NodeIdx(0), 0, 5, stats(1, 1));
        c.insert(0, NodeIdx(0), other, 5, stats(2, 2));
        assert_eq!(c.lookup(0, NodeIdx(0), 0, 5), None, "evicted by conflict");
        assert_eq!(c.lookup(0, NodeIdx(0), other, 5), Some(stats(2, 2)));
    }

    #[test]
    fn walk_prefix_replay() {
        let mut c = RouteCache::new();
        let steps: Vec<WalkStep> =
            (0..6).map(|i| WalkStep { node: NodeIdx(i), dist: 10 * i as u64 }).collect();
        c.walk_insert(0, NodeIdx(9), 1000, 50, 3, &steps);
        // narrower query replays as a prefix under the caller's rule
        let cached = c.walk_lookup(0, NodeIdx(9), 1000, 25, 3).unwrap();
        let narrow: Vec<_> = cached.iter().take_while(|s| s.dist < 25).collect();
        assert_eq!(narrow.len(), 3);
        // wider query must miss (cached span too small)
        assert!(c.walk_lookup(0, NodeIdx(9), 1000, 51, 3).is_none());
        // stale epoch must miss
        assert!(c.walk_lookup(0, NodeIdx(9), 1000, 25, 4).is_none());
    }

    #[test]
    fn walk_arena_reset_is_deterministic() {
        let big: Vec<WalkStep> =
            (0..(WALK_ARENA_CAP / 2 + 1)).map(|i| WalkStep { node: NodeIdx(i), dist: 0 }).collect();
        let run = || {
            let mut c = RouteCache::new();
            c.walk_insert(0, NodeIdx(0), 0, 9, 1, &big);
            c.walk_insert(0, NodeIdx(1), 1, 9, 1, &big); // crosses cap → reset
            let first_gone = c.walk_lookup(0, NodeIdx(0), 0, 9, 1).is_none();
            let second_lives = c.walk_lookup(0, NodeIdx(1), 1, 9, 1).is_some();
            (first_gone, second_lives, c.walk_resets)
        };
        assert_eq!(run(), (true, true, 1));
        assert_eq!(run(), run(), "reset point is a pure function of inserts");
    }

    #[test]
    fn oversized_walk_is_never_cached() {
        let huge: Vec<WalkStep> =
            (0..WALK_ARENA_CAP + 1).map(|i| WalkStep { node: NodeIdx(i), dist: 0 }).collect();
        let mut c = RouteCache::new();
        c.walk_insert(0, NodeIdx(0), 0, 9, 1, &huge);
        assert!(c.walk_lookup(0, NodeIdx(0), 0, 9, 1).is_none());
    }

    #[test]
    fn scratch_buffer_is_reused_across_misses() {
        let mut c = RouteCache::new();
        let mut buf = c.begin_walk();
        buf.push(WalkStep { node: NodeIdx(1), dist: 0 });
        buf.reserve(64);
        let cap = buf.capacity();
        c.commit_walk(0, NodeIdx(0), 0, 9, 1, buf);
        assert_eq!(c.walk_lookup(0, NodeIdx(0), 0, 9, 1).unwrap().len(), 1);
        let again = c.begin_walk();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "the same buffer comes back cleared");
    }

    #[test]
    fn admit_walk_requires_a_second_touch() {
        let mut c = RouteCache::new();
        assert!(!c.admit_walk(3, NodeIdx(7), 100, 2), "first sighting: run plain");
        assert!(c.admit_walk(3, NodeIdx(7), 100, 2), "second sighting: record");
        assert!(c.admit_walk(3, NodeIdx(7), 100, 2), "stays admitted");
        // A different key in the same state starts from scratch.
        assert!(!c.admit_walk(3, NodeIdx(7), 101, 2));
        // An epoch bump restarts the count (new fingerprint).
        assert!(!c.admit_walk(3, NodeIdx(7), 100, 3));
        // clear() forgets candidates.
        c.clear();
        assert!(!c.admit_walk(3, NodeIdx(7), 100, 2));
    }

    #[test]
    fn hit_rate_counts_routes_and_walks() {
        let mut c = RouteCache::new();
        assert_eq!(c.hit_rate(), None);
        c.insert(0, NodeIdx(1), 5, 2, stats(1, 1));
        let _ = c.lookup(0, NodeIdx(1), 5, 2); // hit
        let _ = c.lookup(0, NodeIdx(1), 6, 2); // miss
        assert_eq!(c.hit_rate(), Some(0.5));
        c.reset_counters();
        assert_eq!(c.hit_rate(), None);
        let _ = c.lookup(0, NodeIdx(1), 5, 2); // entries survive a counter reset
        assert_eq!(c.hit_rate(), Some(1.0));
        c.clear();
        assert_eq!(c.lookup(0, NodeIdx(1), 5, 2), None, "clear drops entries");
    }
}
