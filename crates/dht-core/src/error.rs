//! Error types shared across the workspace.

use std::fmt;

/// Errors raised by overlay and discovery operations.
///
/// The simulators are deliberately strict: operations that a real deployed
/// DHT would silently retry (routing from a departed node, joining a full
/// identifier space) are surfaced as errors so tests can assert on them.
#[derive(Debug, Clone, PartialEq)]
pub enum DhtError {
    /// The referenced node is not (or no longer) part of the overlay.
    NodeNotFound {
        /// Arena index of the missing node.
        index: usize,
    },
    /// The overlay has no live nodes, so the operation cannot be routed.
    EmptyOverlay,
    /// The identifier space is fully populated; no fresh ID can be assigned.
    IdSpaceExhausted,
    /// A routing loop was detected (the hop budget was exceeded).
    RoutingLoop {
        /// Number of hops taken before the loop was declared.
        hops: usize,
    },
    /// A query referenced an attribute unknown to the discovery system.
    UnknownAttribute {
        /// The attribute name as supplied by the caller.
        name: String,
    },
    /// A range query had an inverted or out-of-domain range.
    InvalidRange {
        /// Lower bound supplied by the caller.
        low: f64,
        /// Upper bound supplied by the caller.
        high: f64,
    },
    /// Parameters outside the supported domain (e.g. Pareto with alpha <= 0).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// A lookup message was dropped in transit by a fault plan.
    MessageDropped {
        /// Hops taken before the message was lost.
        hops: usize,
    },
    /// A lookup message was forwarded along a stale link to a node that
    /// had failed ungracefully.
    DeadHop {
        /// Hops taken before the message hit the dead node.
        hops: usize,
    },
}

impl fmt::Display for DhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhtError::NodeNotFound { index } => write!(f, "node #{index} is not in the overlay"),
            DhtError::EmptyOverlay => write!(f, "overlay has no live nodes"),
            DhtError::IdSpaceExhausted => write!(f, "identifier space is fully populated"),
            DhtError::RoutingLoop { hops } => {
                write!(f, "routing did not converge after {hops} hops")
            }
            DhtError::UnknownAttribute { name } => write!(f, "unknown attribute {name:?}"),
            DhtError::InvalidRange { low, high } => {
                write!(f, "invalid range [{low}, {high}]")
            }
            DhtError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            DhtError::MessageDropped { hops } => {
                write!(f, "message dropped in transit after {hops} hops")
            }
            DhtError::DeadHop { hops } => {
                write!(f, "message hit an ungracefully failed node after {hops} hops")
            }
        }
    }
}

impl std::error::Error for DhtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_node_not_found() {
        let e = DhtError::NodeNotFound { index: 7 };
        assert_eq!(e.to_string(), "node #7 is not in the overlay");
    }

    #[test]
    fn display_empty_overlay() {
        assert_eq!(DhtError::EmptyOverlay.to_string(), "overlay has no live nodes");
    }

    #[test]
    fn display_routing_loop_mentions_hops() {
        let e = DhtError::RoutingLoop { hops: 128 };
        assert!(e.to_string().contains("128"));
    }

    #[test]
    fn display_unknown_attribute_quotes_name() {
        let e = DhtError::UnknownAttribute { name: "cpu".into() };
        assert!(e.to_string().contains("\"cpu\""));
    }

    #[test]
    fn display_invalid_range_shows_bounds() {
        let e = DhtError::InvalidRange { low: 3.0, high: 1.0 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('1'));
    }

    #[test]
    fn display_message_dropped_mentions_hops() {
        let e = DhtError::MessageDropped { hops: 5 };
        assert!(e.to_string().contains("dropped") && e.to_string().contains('5'));
    }

    #[test]
    fn display_dead_hop_mentions_failed_node() {
        let e = DhtError::DeadHop { hops: 2 };
        assert!(e.to_string().contains("failed node") && e.to_string().contains('2'));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(DhtError::EmptyOverlay);
        assert!(!e.to_string().is_empty());
    }
}
