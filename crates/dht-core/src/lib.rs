//! # dht-core — shared substrate for the LORM reproduction
//!
//! This crate provides everything the overlay simulators (`chord`,
//! `cycloid`) and the resource-discovery systems built on top of them
//! share:
//!
//! * **Ring arithmetic** over a 64-bit circular identifier space
//!   ([`ring`]), including the interval predicates Chord-style protocols
//!   are built from.
//! * **Hashing** ([`hashing`]): a seeded, platform-stable consistent hash
//!   `H` (used to place attributes), and the locality-preserving hash `LPH`
//!   of MAAN/LORM (used to place attribute *values* so that range queries
//!   become contiguous walks).
//! * **Samplers** ([`sampling`]): Bounded Pareto (the paper's workload
//!   distribution), Zipf, and deterministic RNG plumbing so every
//!   experiment is reproducible from a seed.
//! * **Metrics** ([`stats`]): streaming summaries, exact percentiles
//!   (the paper reports 1st/99th percentiles of directory size), and load
//!   distributions.
//! * **Routing traces** ([`trace`]): hop-accurate route results, the unit
//!   in which every figure of the paper is measured.
//! * **Overlay trait** ([`overlay`]): the narrow interface a DHT overlay
//!   must implement to be driven by the experiment engine.
//! * **Route cache** ([`cache`]): epoch-invalidated memoization of
//!   routing results and range-walk segments over a static bed —
//!   byte-identical to uncached routing by construction.
//!
//! Everything here is deterministic: the same seed produces the same
//! network, the same workload and the same measurements.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod fault;
pub mod hashing;
pub mod latency;
pub mod overlay;
pub mod replication;
pub mod ring;
pub mod sampling;
pub mod stats;
pub mod trace;

pub use cache::{route_stats_cached, RouteCache, WalkStep};
pub use error::DhtError;
pub use fault::{
    check_forward, probe_step, route_with_retry, sub_msg_id, walk_msg_id, FaultAccount, FaultPlan,
    FaultSink, MsgId,
};
pub use hashing::{lex_hash, lex_prefix_end, ConsistentHash, LocalityHash};
pub use latency::LatencyModel;
pub use overlay::{BuildMode, NodeIdx, Overlay};
pub use replication::{replica_targets, RepairStats};
pub use ring::{clockwise_dist, in_interval_co, in_interval_oc, in_interval_oo, ring_dist};
pub use sampling::{BoundedPareto, SeedSpawner, Zipf};
pub use stats::{Histogram, LoadDist, Percentiles, Summary};
pub use trace::{Forward, HopCount, LookupTally, RouteResult, RouteSink, RouteStats};
