//! The two hash functions of the paper.
//!
//! LORM (and MAAN, which it borrows the idea from) distinguishes:
//!
//! * the **consistent hash** `H` — a uniform, seeded hash used to place
//!   *attribute names* (strings) onto the identifier space. Uniformity
//!   spreads attributes over clusters / directory nodes; the seed makes
//!   every experiment reproducible.
//! * the **locality-preserving hash** `LPH` (written `ℋ` in the paper) — a
//!   monotone map from a bounded *value* domain onto an identifier
//!   segment. Monotonicity is what turns a range query `[v1, v2]` into a
//!   contiguous clockwise walk between `root(ℋ(v1))` and `root(ℋ(v2))`
//!   (Proposition 3.1 of the paper).

use crate::error::DhtError;

/// Seeded, platform-stable consistent hash `H`.
///
/// Implemented as FNV-1a over the input bytes followed by a SplitMix64
/// finalizer, which gives good avalanche behaviour without pulling in a
/// cryptographic dependency. Stability matters: directory placement in the
/// experiments must not depend on the Rust version or platform, unlike
/// `std::collections::hash_map::DefaultHasher`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsistentHash {
    seed: u64,
}

impl ConsistentHash {
    /// Create a hash function from an experiment seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Hash arbitrary bytes onto the full 64-bit identifier space.
    pub fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET ^ self.seed;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        splitmix64(h)
    }

    /// Hash a string (attribute name) onto the identifier space.
    pub fn hash_str(&self, s: &str) -> u64 {
        self.hash_bytes(s.as_bytes())
    }

    /// Hash a `u64` (e.g. a synthetic node id) onto the identifier space.
    pub fn hash_u64(&self, x: u64) -> u64 {
        splitmix64(x ^ self.seed.rotate_left(32))
    }
}

/// SplitMix64 finalizer: a fixed, well-studied 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Locality-preserving hash `ℋ` over a bounded value domain.
///
/// Maps `[min, max]` monotonically onto `[0, span)` (an identifier segment
/// length chosen by the caller: the full 64-bit ring for Mercury/MAAN, the
/// cyclic-index segment of a cluster for LORM). Values outside the domain
/// are clamped — the paper assumes `π_min ≤ π ≤ π_max` and real grid
/// attributes advertise their domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityHash {
    min: f64,
    max: f64,
    span: u64,
}

impl LocalityHash {
    /// Build an `ℋ` for the value domain `[min, max]` mapped onto
    /// identifiers `[0, span)`. `span = 0` denotes the full 2^64 ring.
    ///
    /// # Errors
    /// Returns [`DhtError::InvalidRange`] if `min >= max` or either bound
    /// is not finite.
    pub fn new(min: f64, max: f64, span: u64) -> Result<Self, DhtError> {
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(DhtError::InvalidRange { low: min, high: max });
        }
        Ok(Self { min, max, span })
    }

    /// Domain lower bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Domain upper bound.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The identifier segment length (`0` = full 2^64 ring).
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Hash a value. Monotone: `a <= b` implies `hash(a) <= hash(b)`.
    pub fn hash(&self, v: f64) -> u64 {
        let v = v.clamp(self.min, self.max);
        let frac = (v - self.min) / (self.max - self.min);
        // `frac` is in [0, 1]; map onto [0, span). Using 2^63 double
        // precision split keeps monotonicity for the full-ring case.
        if self.span == 0 {
            // full ring: scale by 2^64 via two halves to avoid overflow
            let scaled = frac * (u64::MAX as f64);
            if scaled >= u64::MAX as f64 {
                u64::MAX
            } else {
                scaled as u64
            }
        } else {
            let scaled = frac * (self.span as f64);
            (scaled as u64).min(self.span - 1)
        }
    }

    /// Fraction of the domain covered by `[lo, hi]` (clamped). Used by the
    /// analytical models to reason about expected walk lengths.
    pub fn range_fraction(&self, lo: f64, hi: f64) -> f64 {
        let lo = lo.clamp(self.min, self.max);
        let hi = hi.clamp(self.min, self.max);
        if hi <= lo {
            0.0
        } else {
            (hi - lo) / (self.max - self.min)
        }
    }
}

/// Order-preserving encoding of a string onto the 64-bit identifier
/// space: the first eight bytes, big-endian.
///
/// Lexicographic order of strings maps to numeric order of codes, which
/// turns *prefix* queries over string descriptions ("OS=Linux…") into
/// contiguous range queries — the mechanism behind the semantic-discovery
/// extension the paper lists as future work. Strings sharing their first
/// eight bytes collide (they land on the same directory position), which
/// only coarsens placement, never correctness.
pub fn lex_hash(s: &str) -> u64 {
    let mut buf = [0u8; 8];
    let bytes = s.as_bytes();
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf)
}

/// The smallest code strictly greater than every string with prefix `s`
/// (saturating at `u64::MAX`): `[lex_hash(s), lex_prefix_end(s)]` covers
/// exactly the strings starting with `s` (up to the 8-byte horizon).
pub fn lex_prefix_end(s: &str) -> u64 {
    let bytes = s.as_bytes();
    if bytes.len() >= 8 {
        return lex_hash(s);
    }
    let mut buf = [0xFFu8; 8];
    buf[..bytes.len()].copy_from_slice(&bytes[..bytes.len()]);
    u64::from_be_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_hash_is_deterministic() {
        let h = ConsistentHash::new(42);
        assert_eq!(h.hash_str("cpu"), h.hash_str("cpu"));
        assert_eq!(h.hash_bytes(b"mem"), h.hash_bytes(b"mem"));
    }

    #[test]
    fn consistent_hash_depends_on_seed() {
        let a = ConsistentHash::new(1).hash_str("cpu");
        let b = ConsistentHash::new(2).hash_str("cpu");
        assert_ne!(a, b);
    }

    #[test]
    fn consistent_hash_separates_close_inputs() {
        let h = ConsistentHash::new(0);
        let a = h.hash_str("attr-001");
        let b = h.hash_str("attr-002");
        // avalanche: should land far apart on the ring
        assert!(crate::ring::ring_dist(a, b) > 1 << 32);
    }

    #[test]
    fn consistent_hash_u64_differs_from_identity() {
        let h = ConsistentHash::new(0);
        assert_ne!(h.hash_u64(5), 5);
        assert_ne!(h.hash_u64(5), h.hash_u64(6));
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the SplitMix64 reference implementation
        // seeded with 0: first output is 0xE220A8397B1DCDAF.
        assert_eq!(splitmix64(0), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn lph_rejects_bad_domain() {
        assert!(LocalityHash::new(5.0, 5.0, 100).is_err());
        assert!(LocalityHash::new(7.0, 2.0, 100).is_err());
        assert!(LocalityHash::new(f64::NAN, 2.0, 100).is_err());
    }

    #[test]
    fn lph_is_monotone_on_segment() {
        let h = LocalityHash::new(0.0, 100.0, 1 << 20).unwrap();
        let mut prev = 0;
        for i in 0..=1000 {
            let v = i as f64 / 10.0;
            let x = h.hash(v);
            assert!(x >= prev, "not monotone at {v}");
            prev = x;
        }
    }

    #[test]
    fn lph_endpoints_map_to_segment_bounds() {
        let h = LocalityHash::new(1.0, 501.0, 1000).unwrap();
        assert_eq!(h.hash(1.0), 0);
        assert_eq!(h.hash(501.0), 999); // clamped to span-1
        assert_eq!(h.hash(0.0), 0); // below-domain clamps
        assert_eq!(h.hash(1e9), 999); // above-domain clamps
    }

    #[test]
    fn lph_full_ring_monotone() {
        let h = LocalityHash::new(0.0, 1.0, 0).unwrap();
        assert!(h.hash(0.2) < h.hash(0.8));
        assert_eq!(h.hash(0.0), 0);
        assert_eq!(h.hash(1.0), u64::MAX);
    }

    #[test]
    fn lph_range_fraction() {
        let h = LocalityHash::new(0.0, 100.0, 0).unwrap();
        assert!((h.range_fraction(25.0, 75.0) - 0.5).abs() < 1e-12);
        assert_eq!(h.range_fraction(80.0, 20.0), 0.0);
        assert!((h.range_fraction(-50.0, 50.0) - 0.5).abs() < 1e-12);
    }
    #[test]
    fn lex_hash_preserves_lexicographic_order() {
        let words = ["", "a", "aa", "ab", "abc", "b", "linux", "linux-5.4", "windows"];
        for w in words.windows(2) {
            assert!(lex_hash(w[0]) <= lex_hash(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(lex_hash("linux") < lex_hash("linuy"));
    }

    #[test]
    fn lex_prefix_range_covers_exactly_the_prefix() {
        let (lo, hi) = (lex_hash("lin"), lex_prefix_end("lin"));
        for yes in ["lin", "linux", "lint", "lin-zzz"] {
            let c = lex_hash(yes);
            assert!(c >= lo && c <= hi, "{yes} should be in the prefix range");
        }
        for no in ["lim", "lio", "windows", "l"] {
            let c = lex_hash(no);
            assert!(c < lo || c > hi, "{no} should be outside the prefix range");
        }
    }

    #[test]
    fn lex_hash_long_strings_share_8_byte_horizon() {
        assert_eq!(lex_hash("abcdefghi"), lex_hash("abcdefghj"));
        assert_eq!(lex_prefix_end("abcdefghi"), lex_hash("abcdefghi"));
    }
}
