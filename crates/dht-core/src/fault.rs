//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes a fault regime — per-message drop
//! probability, an ungraceful node-failure fraction, and retry/budget
//! limits — as a *pure function of a seed*. No RNG stream is consumed:
//! every coin is a [`splitmix64`] hash of the plan seed and the message's
//! identity (id, attempt, hop) or the node's arena index. Two
//! consequences the test suite pins down:
//!
//! * **Shard invariance.** Whether a query batch runs on 1 shard or 16,
//!   each message hashes the same coins, so degraded results are
//!   bit-identical across shard counts.
//! * **Monotonicity.** The coin value is independent of the configured
//!   rate; a message dropped at 5% loss is necessarily dropped at 20%
//!   (the firing set `{hash < bar}` grows with the bar), so success
//!   rates degrade monotonically in the loss rate.
//!
//! Failed nodes model *stale routing state*: the overlay still lists
//! them in fingers and leaf sets (they "linger" until repair), but any
//! attempt to forward a message to one yields [`Forward::DeadHop`]. The
//! plan is consulted through a [`FaultSink`] wrapped around the normal
//! routing sink, so the fault-free path is untouched — and an inert plan
//! ([`FaultPlan::none`], or any plan with both rates zero) short-circuits
//! to the plain code path, keeping zero-fault runs byte-identical to
//! fault-free runs.

use crate::error::DhtError;
use crate::hashing::splitmix64;
use crate::overlay::{NodeIdx, Overlay};
use crate::trace::{Forward, RouteSink, RouteStats};

/// Domain-separation salts for the coin hashes: message drops, node
/// failures, and alternate-origin selection draw from disjoint streams.
const SALT_DROP: u64 = 0x9E6C_62C5_D0B6_57A1;
const SALT_NODE: u64 = 0x517C_C1B7_2722_0A95;
const SALT_ORIGIN: u64 = 0x2545_F491_4F6C_DD1D;
const SALT_WALK: u64 = 0x6A09_E667_F3BC_C909;

/// Identity of one lookup message under a [`FaultPlan`].
///
/// The `id` is assigned by the query layer (derived from the batch seed
/// and the query's position, never from shared mutable state); `attempt`
/// distinguishes retries of the same logical lookup so each retry draws
/// fresh drop coins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgId {
    /// Stable identifier of the logical message.
    pub id: u64,
    /// Retry attempt number, starting at 0.
    pub attempt: u32,
}

impl MsgId {
    /// The first attempt of message `id`.
    pub fn first(id: u64) -> Self {
        Self { id, attempt: 0 }
    }
}

/// A seeded, deterministic fault regime.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    fail_frac: f64,
    /// `drop_rate` mapped onto the hash range: a message coin fires when
    /// its hash is below this bar.
    drop_bar: u64,
    /// `fail_frac` mapped onto the hash range, likewise for node coins.
    fail_bar: u64,
    max_attempts: u32,
    hop_budget: usize,
}

/// Map a probability in `[0, 1]` onto the `u64` hash range.
fn bar(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else if p <= 0.0 {
        0
    } else {
        // u64::MAX as f64 rounds to 2^64, so the bar is `p` of the range.
        (p * u64::MAX as f64) as u64
    }
}

impl FaultPlan {
    /// A plan with the given per-message drop probability and ungraceful
    /// node-failure fraction. Defaults: 3 attempts per lookup, a 4096-hop
    /// per-query budget.
    ///
    /// # Errors
    /// [`DhtError::InvalidParameter`] unless both rates are finite and in
    /// `[0, 1]`.
    pub fn new(seed: u64, drop_rate: f64, fail_frac: f64) -> Result<Self, DhtError> {
        if !(0.0..=1.0).contains(&drop_rate) {
            return Err(DhtError::InvalidParameter { what: "drop_rate must be in [0, 1]" });
        }
        if !(0.0..=1.0).contains(&fail_frac) {
            return Err(DhtError::InvalidParameter { what: "fail_frac must be in [0, 1]" });
        }
        Ok(Self {
            seed,
            drop_rate,
            fail_frac,
            drop_bar: bar(drop_rate),
            fail_bar: bar(fail_frac),
            max_attempts: 3,
            hop_budget: 4096,
        })
    }

    /// The inert plan: nothing drops, nothing fails. Every fault-aware
    /// entry point short-circuits to the fault-free code path when given
    /// this plan, so results are byte-identical to not injecting faults
    /// at all (the determinism suite asserts this).
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            fail_frac: 0.0,
            drop_bar: 0,
            fail_bar: 0,
            max_attempts: 3,
            hop_budget: 4096,
        }
    }

    /// Override the per-lookup retry budget (clamped to at least 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Override the per-query hop budget (clamped to at least 1).
    pub fn with_hop_budget(mut self, budget: usize) -> Self {
        self.hop_budget = budget.max(1);
        self
    }

    /// True when no fault can ever fire under this plan.
    pub fn is_inert(&self) -> bool {
        self.drop_bar == 0 && self.fail_bar == 0
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-message drop probability.
    pub fn drop_rate(&self) -> f64 {
        self.drop_rate
    }

    /// Fraction of nodes failed ungracefully (lingering in routing state).
    pub fn fail_frac(&self) -> f64 {
        self.fail_frac
    }

    /// Attempts allowed per logical lookup (first try + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Total hops (successful and wasted) one query may spend before its
    /// remaining sub-queries are abandoned as degraded.
    pub fn hop_budget(&self) -> usize {
        self.hop_budget
    }

    fn coin(&self, salt: u64, x: u64) -> u64 {
        splitmix64(self.seed ^ salt ^ x)
    }

    /// Does the fault plan drop `msg` on its `hop`-th forwarding?
    pub fn drops_message(&self, msg: MsgId, hop: usize) -> bool {
        if self.drop_bar == 0 {
            return false;
        }
        let x = msg
            .id
            .wrapping_add(u64::from(msg.attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((hop as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        self.coin(SALT_DROP, x) < self.drop_bar
    }

    /// Is `node` in the plan's ungracefully-failed set? Failed nodes stay
    /// in the overlay (stale fingers and leaf sets still point at them)
    /// but forwarding to one yields [`Forward::DeadHop`].
    pub fn node_is_failed(&self, node: NodeIdx) -> bool {
        self.fail_bar != 0 && self.coin(SALT_NODE, node.0 as u64) < self.fail_bar
    }

    /// Deterministic alternate origin for retry `attempt` of `msg_id`:
    /// a hash picks a live node, skipping plan-failed nodes (a failed
    /// requester could not re-issue the lookup). `None` on an empty
    /// overlay.
    pub fn alternate_origin<O: Overlay + ?Sized>(
        &self,
        overlay: &O,
        msg_id: u64,
        attempt: u32,
    ) -> Option<NodeIdx> {
        let live = overlay.live_nodes();
        if live.is_empty() {
            return None;
        }
        let len = live.len();
        let start =
            (self.coin(SALT_ORIGIN, msg_id.wrapping_add(u64::from(attempt))) % len as u64) as usize;
        for off in 0..len {
            let cand = live[(start + off) % len];
            if !self.node_is_failed(cand) {
                return Some(cand);
            }
        }
        // Every live node is plan-failed; fall back to the hashed pick so
        // degraded routing still has a deterministic origin.
        Some(live[start])
    }
}

/// A [`RouteSink`] wrapper that consults a [`FaultPlan`] before every
/// forwarding: the routing loops call [`check_forward`] ahead of
/// `visit`, so a plain sink (default `forward` = deliver) is untouched
/// while this wrapper injects [`Forward::Dropped`] / [`Forward::DeadHop`].
#[derive(Debug)]
pub struct FaultSink<'a, S: RouteSink> {
    inner: &'a mut S,
    plan: &'a FaultPlan,
    msg: MsgId,
}

impl<'a, S: RouteSink> FaultSink<'a, S> {
    /// Wrap `inner`, injecting faults from `plan` for message `msg`.
    pub fn new(inner: &'a mut S, plan: &'a FaultPlan, msg: MsgId) -> Self {
        Self { inner, plan, msg }
    }
}

impl<S: RouteSink> RouteSink for FaultSink<'_, S> {
    fn visit(&mut self, hop: NodeIdx) {
        self.inner.visit(hop);
    }

    fn hops(&self) -> usize {
        self.inner.hops()
    }

    fn forward(&mut self, next: NodeIdx) -> Forward {
        // Drop-in-transit is checked first: a message lost on the wire
        // never discovers whether its target was alive.
        if self.plan.drops_message(self.msg, self.inner.hops()) {
            Forward::Dropped
        } else if self.plan.node_is_failed(next) {
            Forward::DeadHop
        } else {
            Forward::Deliver
        }
    }
}

/// Ask the sink to forward to `next`, mapping a fault verdict onto the
/// matching [`DhtError`]. The routing loops call this immediately before
/// `sink.visit(next)`; for plain sinks the default verdict is
/// [`Forward::Deliver`] and this compiles down to `Ok(())`.
pub fn check_forward<S: RouteSink + ?Sized>(sink: &mut S, next: NodeIdx) -> Result<(), DhtError> {
    match sink.forward(next) {
        Forward::Deliver => Ok(()),
        Forward::Dropped => Err(DhtError::MessageDropped { hops: sink.hops() }),
        Forward::DeadHop => Err(DhtError::DeadHop { hops: sink.hops() }),
    }
}

/// Degradation accounting for one query: how many retries were spent,
/// how many messages the plan dropped, and how many hops were wasted on
/// attempts that did not complete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultAccount {
    /// Retry attempts issued after a failed first try.
    pub retries: u64,
    /// Messages dropped in transit (lookup forwards and walk probes).
    pub dropped_msgs: u64,
    /// Hops spent on attempts that ended in a drop or a dead hop.
    pub wasted_hops: u64,
}

impl FaultAccount {
    /// Fold another account into this one.
    pub fn absorb(&mut self, other: FaultAccount) {
        self.retries += other.retries;
        self.dropped_msgs += other.dropped_msgs;
        self.wasted_hops += other.wasted_hops;
    }
}

/// Route a lookup under a fault plan with bounded retry and
/// alternate-probe fallback.
///
/// Attempt 0 routes from `from`; each retry re-issues the lookup from a
/// deterministic alternate origin (so a retry can route *around* the
/// stale state that killed the previous attempt) with fresh drop coins.
/// On success the returned `hops` include the hops wasted by failed
/// attempts — the hop-inflation cost of the fault regime — and `acct`
/// absorbs the retry/drop counts. After `max_attempts` failures the last
/// error is returned with the total wasted hops.
pub fn route_with_retry<O: Overlay + ?Sized>(
    overlay: &O,
    from: NodeIdx,
    key: O::Key,
    plan: &FaultPlan,
    msg_id: u64,
    acct: &mut FaultAccount,
) -> Result<RouteStats, DhtError> {
    if plan.is_inert() {
        return overlay.route_stats(from, key);
    }
    let mut wasted = 0usize;
    let mut attempt = 0u32;
    loop {
        let origin = if attempt == 0 {
            from
        } else {
            plan.alternate_origin(overlay, msg_id, attempt).unwrap_or(from)
        };
        let msg = MsgId { id: msg_id, attempt };
        match overlay.route_stats_faulty(origin, key, plan, msg) {
            Ok(mut r) => {
                acct.wasted_hops += wasted as u64;
                r.hops += wasted;
                return Ok(r);
            }
            Err(DhtError::MessageDropped { hops }) => {
                acct.dropped_msgs += 1;
                wasted += hops;
                attempt += 1;
                if attempt >= plan.max_attempts {
                    acct.wasted_hops += wasted as u64;
                    return Err(DhtError::MessageDropped { hops: wasted });
                }
                acct.retries += 1;
            }
            Err(DhtError::DeadHop { hops }) => {
                wasted += hops;
                attempt += 1;
                if attempt >= plan.max_attempts {
                    acct.wasted_hops += wasted as u64;
                    return Err(DhtError::DeadHop { hops: wasted });
                }
                acct.retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Derive the message id of sub-query `sub` from a query's `msg_seed`.
///
/// Every system uses this same convention, so a query's fault draws are
/// a pure function of `(plan seed, query identity, sub index)` — never
/// of sharding or evaluation order.
pub fn sub_msg_id(msg_seed: u64, sub: usize) -> u64 {
    splitmix64(msg_seed ^ (sub as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Derive the id stream for the directory-walk probes that follow the
/// lookup of `sub_msg` (domain-separated so walk coins never collide
/// with lookup coins).
pub fn walk_msg_id(sub_msg: u64) -> u64 {
    splitmix64(sub_msg ^ SALT_WALK)
}

/// Decide whether a directory walk may advance to `next` at `step`
/// (1-based). A probe message gets one retry; an ungracefully failed
/// member is unreachable regardless. Returns `false` when the walk must
/// truncate, with drops/retries recorded in `acct`.
pub fn probe_step(
    plan: &FaultPlan,
    walk_msg: u64,
    step: usize,
    next: NodeIdx,
    acct: &mut FaultAccount,
) -> bool {
    if plan.node_is_failed(next) {
        return false;
    }
    if !plan.drops_message(MsgId { id: walk_msg, attempt: 0 }, step) {
        return true;
    }
    acct.dropped_msgs += 1;
    acct.retries += 1;
    if !plan.drops_message(MsgId { id: walk_msg, attempt: 1 }, step) {
        return true;
    }
    acct.dropped_msgs += 1;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HopCount;

    #[test]
    fn rates_are_validated() {
        assert!(FaultPlan::new(1, 0.0, 0.0).is_ok());
        assert!(FaultPlan::new(1, 1.0, 1.0).is_ok());
        assert!(FaultPlan::new(1, -0.1, 0.0).is_err());
        assert!(FaultPlan::new(1, 0.0, 1.5).is_err());
        assert!(FaultPlan::new(1, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn none_is_inert_and_zero_rate_plan_is_inert() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::new(99, 0.0, 0.0).unwrap().is_inert());
        assert!(!FaultPlan::new(99, 0.1, 0.0).unwrap().is_inert());
        assert!(!FaultPlan::new(99, 0.0, 0.1).unwrap().is_inert());
    }

    #[test]
    fn inert_plan_never_fires() {
        let p = FaultPlan::none();
        for id in 0..200u64 {
            assert!(!p.drops_message(MsgId::first(id), id as usize));
            assert!(!p.node_is_failed(NodeIdx(id as usize)));
        }
    }

    #[test]
    fn coins_are_deterministic() {
        let a = FaultPlan::new(42, 0.3, 0.2).unwrap();
        let b = FaultPlan::new(42, 0.3, 0.2).unwrap();
        for id in 0..500u64 {
            let msg = MsgId { id, attempt: (id % 3) as u32 };
            assert_eq!(
                a.drops_message(msg, id as usize % 7),
                b.drops_message(msg, id as usize % 7)
            );
            assert_eq!(
                a.node_is_failed(NodeIdx(id as usize)),
                b.node_is_failed(NodeIdx(id as usize))
            );
        }
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let p = FaultPlan::new(7, 0.2, 0.0).unwrap();
        let fired = (0..10_000u64).filter(|&id| p.drops_message(MsgId::first(id), 0)).count();
        assert!((1_700..=2_300).contains(&fired), "20% of 10k, got {fired}");
    }

    #[test]
    fn drops_are_monotone_in_rate() {
        let lo = FaultPlan::new(7, 0.05, 0.0).unwrap();
        let hi = FaultPlan::new(7, 0.20, 0.0).unwrap();
        for id in 0..5_000u64 {
            let msg = MsgId::first(id);
            if lo.drops_message(msg, 3) {
                assert!(hi.drops_message(msg, 3), "drop sets must nest");
            }
        }
    }

    #[test]
    fn failed_nodes_are_monotone_in_fraction() {
        let lo = FaultPlan::new(9, 0.0, 0.1).unwrap();
        let hi = FaultPlan::new(9, 0.0, 0.4).unwrap();
        let mut lo_n = 0;
        for i in 0..2_000usize {
            if lo.node_is_failed(NodeIdx(i)) {
                lo_n += 1;
                assert!(hi.node_is_failed(NodeIdx(i)), "failed sets must nest");
            }
        }
        assert!((120..=280).contains(&lo_n), "10% of 2k, got {lo_n}");
    }

    #[test]
    fn retries_draw_fresh_coins() {
        let p = FaultPlan::new(3, 0.5, 0.0).unwrap();
        let outcomes: Vec<bool> =
            (0..4).map(|a| p.drops_message(MsgId { id: 1, attempt: a }, 0)).collect();
        assert!(outcomes.iter().any(|&b| b) && outcomes.iter().any(|&b| !b), "{outcomes:?}");
    }

    #[test]
    fn fault_sink_delegates_and_judges() {
        let plan = FaultPlan::new(5, 1.0, 0.0).unwrap();
        let mut hops = HopCount::default();
        let mut sink = FaultSink::new(&mut hops, &plan, MsgId::first(8));
        assert_eq!(sink.forward(NodeIdx(1)), Forward::Dropped);
        sink.visit(NodeIdx(1));
        assert_eq!(sink.hops(), 1);
        assert!(check_forward(&mut sink, NodeIdx(2)).is_err());
    }

    #[test]
    fn dead_hop_verdict_on_failed_target() {
        let plan = FaultPlan::new(5, 0.0, 1.0).unwrap();
        let mut hops = HopCount::default();
        let mut sink = FaultSink::new(&mut hops, &plan, MsgId::first(8));
        assert_eq!(sink.forward(NodeIdx(3)), Forward::DeadHop);
        assert_eq!(check_forward(&mut sink, NodeIdx(3)), Err(DhtError::DeadHop { hops: 0 }));
    }

    #[test]
    fn plain_sinks_always_deliver() {
        let mut hops = HopCount::default();
        assert!(check_forward(&mut hops, NodeIdx(7)).is_ok());
        let mut path: Vec<NodeIdx> = Vec::new();
        assert!(check_forward(&mut path, NodeIdx(7)).is_ok());
        assert!(path.is_empty(), "check_forward must not record a hop");
    }

    #[test]
    fn builders_clamp_to_valid_minimums() {
        let p = FaultPlan::none().with_max_attempts(0).with_hop_budget(0);
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.hop_budget(), 1);
    }

    #[test]
    fn account_absorb_sums_fields() {
        let mut a = FaultAccount { retries: 1, dropped_msgs: 2, wasted_hops: 3 };
        a.absorb(FaultAccount { retries: 10, dropped_msgs: 20, wasted_hops: 30 });
        assert_eq!(a, FaultAccount { retries: 11, dropped_msgs: 22, wasted_hops: 33 });
    }

    #[test]
    fn msg_id_derivations_are_stable_and_distinct() {
        assert_eq!(sub_msg_id(42, 0), sub_msg_id(42, 0));
        assert_ne!(sub_msg_id(42, 0), sub_msg_id(42, 1));
        assert_ne!(sub_msg_id(42, 0), sub_msg_id(43, 0));
        // Walk coins are domain-separated from lookup coins.
        assert_ne!(walk_msg_id(sub_msg_id(42, 0)), sub_msg_id(42, 0));
    }

    #[test]
    fn probe_step_never_truncates_under_inert_plan() {
        let plan = FaultPlan::none();
        let mut acct = FaultAccount::default();
        for step in 1..=64 {
            assert!(probe_step(&plan, 7, step, NodeIdx(step), &mut acct));
        }
        assert_eq!(acct, FaultAccount::default());
    }

    #[test]
    fn probe_step_truncates_at_failed_member_without_coins() {
        let plan = FaultPlan::new(5, 0.0, 1.0).unwrap();
        let mut acct = FaultAccount::default();
        assert!(!probe_step(&plan, 7, 1, NodeIdx(3), &mut acct));
        assert_eq!(acct, FaultAccount::default(), "dead member draws no drop coins");
    }

    #[test]
    fn probe_step_retries_once_then_gives_up() {
        let plan = FaultPlan::new(5, 1.0, 0.0).unwrap();
        let mut acct = FaultAccount::default();
        assert!(!probe_step(&plan, 7, 1, NodeIdx(3), &mut acct));
        assert_eq!(acct, FaultAccount { retries: 1, dropped_msgs: 2, wasted_hops: 0 });
    }

    #[test]
    fn probe_step_survival_is_monotone_in_loss() {
        let low = FaultPlan::new(9, 0.05, 0.0).unwrap();
        let high = FaultPlan::new(9, 0.4, 0.0).unwrap();
        for msg in 0..300u64 {
            let mut a = FaultAccount::default();
            let mut b = FaultAccount::default();
            let survive_high = probe_step(&high, msg, 1, NodeIdx(1), &mut b);
            if survive_high {
                assert!(probe_step(&low, msg, 1, NodeIdx(1), &mut a));
            }
        }
    }
}
