//! Per-hop network latency models.
//!
//! The paper measures *logical* hops; deployments care about wall-clock
//! query latency. A [`LatencyModel`] assigns each overlay hop a sampled
//! delay so route traces can be replayed into latency distributions (the
//! `latency` experiment). Sub-queries issued in parallel complete at the
//! *maximum* of their latencies; sequential plans pay the *sum* — which is
//! exactly the trade `lorm::QueryPlan` exposes.

use rand::Rng;

/// A distribution of one-hop network delays, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every hop costs the same (useful for sanity checks: latency is then
    /// proportional to hop count).
    Constant {
        /// Per-hop delay in ms.
        ms: f64,
    },
    /// Uniform in `[min_ms, max_ms]` — a bounded-jitter LAN/testbed model.
    Uniform {
        /// Minimum per-hop delay.
        min_ms: f64,
        /// Maximum per-hop delay.
        max_ms: f64,
    },
    /// Exponential with the given mean — the classic heavy-ish tail of
    /// wide-area overlay hops.
    Exponential {
        /// Mean per-hop delay.
        mean_ms: f64,
    },
}

impl LatencyModel {
    /// Sample one hop's delay.
    pub fn sample_hop<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            LatencyModel::Constant { ms } => ms,
            LatencyModel::Uniform { min_ms, max_ms } => {
                debug_assert!(min_ms <= max_ms);
                rng.gen_range(min_ms..=max_ms)
            }
            LatencyModel::Exponential { mean_ms } => {
                crate::sampling::exponential(rng, 1.0 / mean_ms)
            }
        }
    }

    /// Sample the total delay of a path of `hops` hops.
    pub fn sample_path<R: Rng + ?Sized>(&self, hops: usize, rng: &mut R) -> f64 {
        (0..hops).map(|_| self.sample_hop(rng)).sum()
    }

    /// Expected per-hop delay.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Constant { ms } => ms,
            LatencyModel::Uniform { min_ms, max_ms } => (min_ms + max_ms) / 2.0,
            LatencyModel::Exponential { mean_ms } => mean_ms,
        }
    }

    /// A typical wide-area default: exponential hops with a 50 ms mean
    /// (the scale of inter-site grid links).
    pub fn wan() -> Self {
        LatencyModel::Exponential { mean_ms: 50.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x1A7)
    }

    #[test]
    fn constant_is_deterministic() {
        let m = LatencyModel::Constant { ms: 10.0 };
        let mut r = rng();
        assert_eq!(m.sample_hop(&mut r), 10.0);
        assert_eq!(m.sample_path(7, &mut r), 70.0);
        assert_eq!(m.mean(), 10.0);
    }

    #[test]
    fn uniform_stays_in_bounds_and_centers() {
        let m = LatencyModel::Uniform { min_ms: 5.0, max_ms: 15.0 };
        let mut r = rng();
        let mut total = 0.0;
        for _ in 0..10_000 {
            let x = m.sample_hop(&mut r);
            assert!((5.0..=15.0).contains(&x));
            total += x;
        }
        assert!((total / 10_000.0 - m.mean()).abs() < 0.2);
    }

    #[test]
    fn exponential_mean_matches() {
        let m = LatencyModel::wan();
        let mut r = rng();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.sample_hop(&mut r)).sum();
        assert!((total / n as f64 - 50.0).abs() < 2.0);
    }

    #[test]
    fn empty_path_costs_nothing() {
        let mut r = rng();
        assert_eq!(LatencyModel::wan().sample_path(0, &mut r), 0.0);
    }
}
