//! Property-based churn testing of LORM: arbitrary interleavings of
//! joins, graceful leaves, abrupt failures, maintenance and queries keep
//! the system's invariants intact.

use grid_resource::{QueryMix, ResourceDiscovery, Workload, WorkloadConfig};
use lorm::{Lorm, LormConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One step of a random churn script.
#[derive(Debug, Clone)]
enum Op {
    Join,
    Leave,
    Fail,
    Maintain,
    Query(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Join),
        3 => Just(Op::Leave),
        2 => Just(Op::Fail),
        1 => Just(Op::Maintain),
        3 => (1u8..4).prop_map(Op::Query),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_churn_scripts_preserve_invariants(
        seed: u64,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let d = 6u8;
        let n = 300usize; // below capacity (384) so joins can land
        let cfg = WorkloadConfig {
            num_attrs: 10,
            values_per_attr: 30,
            num_nodes: n,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let workload = Workload::generate(cfg, &mut rng).unwrap();
        let mut sys = Lorm::new(n, &workload.space, LormConfig { dimension: d, seed, ..Default::default() });
        sys.place_all(&workload.reports);

        let mut max_phys = n;
        let mut expected_live = n;
        let mut dirty = false; // directories stale since last place_all?
        for op in ops {
            match op {
                Op::Join => {
                    if sys.join_physical(&mut rng).is_ok() {
                        max_phys += 1;
                        expected_live += 1;
                    }
                }
                Op::Leave => {
                    if expected_live > 2 {
                        for _ in 0..32 {
                            let p = rng.gen_range(0..max_phys);
                            if sys.is_live(p) {
                                prop_assert!(sys.leave_physical(p).is_ok());
                                expected_live -= 1;
                                // graceful leave hands its directory off
                                break;
                            }
                        }
                    }
                }
                Op::Fail => {
                    if expected_live > 2 {
                        for _ in 0..32 {
                            let p = rng.gen_range(0..max_phys);
                            if sys.is_live(p) {
                                prop_assert!(sys.fail_physical(p).is_ok());
                                expected_live -= 1;
                                dirty = true;
                                break;
                            }
                        }
                    }
                }
                Op::Maintain => {
                    sys.stabilize();
                    sys.place_all(&workload.reports);
                    dirty = false;
                }
                Op::Query(arity) => {
                    let origin = loop {
                        let p = rng.gen_range(0..max_phys);
                        if sys.is_live(p) {
                            break p;
                        }
                    };
                    let q = workload.random_query(arity as usize, QueryMix::Range, &mut rng);
                    // Queries may be incomplete while dirty, but they must
                    // resolve and never fabricate owners.
                    let out = sys.query_from(origin, &q);
                    prop_assert!(out.is_ok(), "query errored under churn");
                    let owners = out.unwrap().owners;
                    for o in &owners {
                        let satisfies_all = q.subs.iter().all(|sub| {
                            workload.reports.iter().any(|r| {
                                r.owner == *o && r.attr == sub.attr && sub.target.matches(r.value)
                            })
                        });
                        prop_assert!(satisfies_all, "fabricated owner {o}");
                    }
                }
            }
            prop_assert_eq!(sys.num_physical(), expected_live);
        }
        // a final maintenance round restores full conservation
        sys.stabilize();
        sys.place_all(&workload.reports);
        prop_assert_eq!(sys.total_pieces(), workload.reports.len());
        let _ = dirty;
    }
}
