//! The LORM resource discovery service.

use crate::keys::{KeyDeriver, Placement};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::{
    probe_step, route_stats_cached, route_with_retry, sub_msg_id, walk_msg_id, BuildMode, DhtError,
    FaultAccount, FaultPlan, LoadDist, LookupTally, NodeIdx, Overlay, RepairStats, RouteCache,
    WalkStep,
};
use grid_resource::{
    discovery::join_owners, AttributeSpace, Directory, FaultyOutcome, PieceKey, Query,
    QueryOutcome, ReplicaStore, ResourceDiscovery, ResourceInfo, SelectivityEstimator, ValueTarget,
};
use rand::rngs::SmallRng;

/// Construction parameters for [`Lorm`].
#[derive(Debug, Clone, Copy)]
pub struct LormConfig {
    /// Cycloid dimension `d` (the paper's evaluation: 8, i.e. 2048 slots).
    pub dimension: u8,
    /// Experiment seed (drives identifier assignment and hashing).
    pub seed: u64,
    /// Value-placement strategy (`Lph` is the paper's design; `Hashed` is
    /// the ablation that destroys range locality).
    pub placement: Placement,
}

impl Default for LormConfig {
    fn default() -> Self {
        Self { dimension: 8, seed: 0x10124, placement: Placement::Lph }
    }
}

/// LORM: multi-attribute range-query resource discovery over one Cycloid.
///
/// Physical node `p` of the grid is Cycloid node `NodeIdx(p)` at
/// construction; nodes joining later get fresh indices. Every node keeps a
/// *directory*: the resource information pieces whose `rescID` it is the
/// root of.
#[derive(Clone)]
pub struct Lorm {
    overlay: Cycloid,
    keys: KeyDeriver,
    /// Directory per arena slot.
    directories: Vec<Directory>,
    /// Physical node -> overlay node (`None` after departure).
    phys_node: Vec<Option<NodeIdx>>,
    total_pieces: usize,
    mode: BuildMode,
    /// Replication degree (1 = unreplicated, no replica state at all).
    repl: usize,
    /// Replica store per arena slot, placed along the inside leaf set
    /// (cluster members clockwise of the root). Empty below degree 2.
    replicas: Vec<ReplicaStore>,
    repair: RepairStats,
    /// Per-attribute value histograms driving the adaptive query plan,
    /// rebuilt at `place_all` and updated per routed `register`.
    sel: SelectivityEstimator,
}

impl Lorm {
    /// Build a LORM system of `n` physical nodes over the attribute space.
    ///
    /// # Panics
    /// Panics if `n` exceeds the Cycloid capacity `d·2^d`.
    pub fn new(n: usize, space: &AttributeSpace, cfg: LormConfig) -> Self {
        Self::new_with_mode(n, space, cfg, BuildMode::Bulk)
    }

    /// Build with an explicit construction mode (overlay assembly and
    /// report placement; both modes are byte-identical, see [`BuildMode`]).
    ///
    /// # Panics
    /// Panics if `n` exceeds the Cycloid capacity `d·2^d`.
    pub fn new_with_mode(
        n: usize,
        space: &AttributeSpace,
        cfg: LormConfig,
        mode: BuildMode,
    ) -> Self {
        let overlay = Cycloid::build_with_mode(
            n,
            CycloidConfig { dimension: cfg.dimension, seed: cfg.seed },
            mode,
        );
        let keys = KeyDeriver::with_placement(space, cfg.dimension, cfg.seed, cfg.placement);
        let arena = overlay.arena_len();
        Self {
            overlay,
            keys,
            directories: vec![Directory::new(); arena],
            phys_node: (0..n).map(|i| Some(NodeIdx(i))).collect(),
            total_pieces: 0,
            mode,
            repl: 1,
            replicas: Vec::new(),
            repair: RepairStats::new(),
            sel: SelectivityEstimator::new(space),
        }
    }

    /// The underlying Cycloid overlay (read-only).
    pub fn overlay(&self) -> &Cycloid {
        &self.overlay
    }

    /// The key deriver (rescID computation).
    pub fn keys(&self) -> &KeyDeriver {
        &self.keys
    }

    /// Directory of a specific overlay node (for inspection).
    pub fn directory(&self, node: NodeIdx) -> &Directory {
        &self.directories[node.0]
    }

    /// Replica store of one node (inspection/tests).
    pub fn replicas_of(&self, node: NodeIdx) -> Option<&ReplicaStore> {
        self.replicas.get(node.0)
    }

    fn node_of(&self, phys: usize) -> Result<NodeIdx, DhtError> {
        self.phys_node.get(phys).copied().flatten().ok_or(DhtError::NodeNotFound { index: phys })
    }

    /// Pack a rescID into the replica layer's `u64` routing key (the
    /// replica entry format is overlay-agnostic; promotion unpacks it).
    fn pack_id(id: CycloidId) -> u64 {
        (u64::from(id.cubical) << 8) | u64::from(id.cyclic)
    }

    fn unpack_id(key: u64) -> CycloidId {
        CycloidId { cubical: (key >> 8) as u32, cyclic: (key & 0xFF) as u8 }
    }

    /// Copy every live primary piece to its current leaf-set targets,
    /// skipping copies that already exist. With `account` the new copies
    /// are charged to the repair counters (repair); without it they are
    /// free (initial seeding).
    fn replicate_primaries(&mut self, account: bool) {
        let mut targets: Vec<NodeIdx> = Vec::new();
        for &p in self.overlay.live_nodes() {
            targets.clear();
            if self.overlay.replica_targets_into(p, self.repl, &mut targets).is_err()
                || targets.is_empty()
            {
                continue;
            }
            let Some(dir) = self.directories.get(p.0) else { continue };
            for info in dir.iter() {
                let key = Self::pack_id(self.keys.resc_id(info.attr, info.value));
                for &t in &targets {
                    if self.replicas[t.0].insert(p, key, *info) && account {
                        self.repair.record_copy();
                    }
                }
            }
        }
    }

    /// One replica-repair round, run right after the overlay's own link
    /// repair: promote replicas whose primary died to the rescID's current
    /// root (unless a graceful handoff already put the piece there), then
    /// re-replicate every live primary to its current targets. No-op
    /// below degree 2; mirrors `ChordHost::repair_replicas_with`.
    fn repair_replicas(&mut self) {
        if self.repl <= 1 {
            return;
        }
        let arena = self.overlay.arena_len();
        if self.replicas.len() < arena {
            self.replicas.resize(arena, ReplicaStore::new());
        }
        if self.directories.len() < arena {
            self.directories.resize(arena, Directory::new());
        }
        self.repair.record_round();
        let overlay = &self.overlay;
        for holder in 0..self.replicas.len() {
            if !overlay.node(NodeIdx(holder)).map(|n| n.is_alive()).unwrap_or(false) {
                continue;
            }
            let dead = self.replicas[holder]
                .drain_dead(|p| overlay.node(p).map(|n| n.is_alive()).unwrap_or(false));
            for e in dead {
                match overlay.owner_of(Self::unpack_id(e.key)) {
                    Ok(root) if !self.directories[root.0].contains(&e.info) => {
                        self.directories[root.0].push(e.info);
                        self.total_pieces += 1;
                        self.repair.record_promotion();
                    }
                    _ => self.repair.record_dropped(),
                }
            }
        }
        self.replicate_primaries(true);
    }

    fn store(&mut self, node: NodeIdx, info: ResourceInfo) {
        if self.directories.len() < self.overlay.arena_len() {
            self.directories.resize(self.overlay.arena_len(), Directory::new());
        }
        self.directories[node.0].push(info);
        self.total_pieces += 1;
    }

    /// Probe the intra-cluster walk of a range query: starting at the root
    /// of `ℋ(low)`, follow inside-leaf successors while the next member\'s
    /// value sector still intersects the queried arc `[ℋ(low), ℋ(high)]`
    /// (Proposition 3.1). Returns the probed nodes in walk order,
    /// including the start.
    ///
    /// The stop rule is the *sector transition*: a successor is probed iff
    /// the first cyclic position it owns (rather than the current node)
    /// lies within the arc. This stays correct when nearest-neighbor
    /// ownership wraps — e.g. a two-member cluster where `root(low)` and
    /// `root(high)` coincide but the member in between owns interior
    /// positions.
    fn range_walk_into(&self, start: NodeIdx, lo_pos: u8, hi_pos: u8, out: &mut Vec<NodeIdx>) {
        let d = self.overlay.dimension();
        let span = CycloidId::cw_cyclic_dist(lo_pos, hi_pos, d);
        out.push(start);
        let mut cur = start;
        for _ in 0..d {
            let Some(next) = self.overlay.cluster_successor(cur).ok().flatten() else {
                break;
            };
            if next == start {
                break;
            }
            let Some(p) = self.transition_position(cur, next) else {
                break;
            };
            if CycloidId::cw_cyclic_dist(lo_pos, p, d) > span {
                break;
            }
            out.push(next);
            cur = next;
        }
    }

    /// The cached twin of [`Self::range_walk_into`] — identical emission
    /// by construction. A fresh-epoch segment cached for at least this
    /// span replays through the walk's own stop rule (`dist <= span`);
    /// otherwise the walk runs for real and its emission is recorded.
    ///
    /// A walk that stopped for a span-*independent* reason (no successor,
    /// full circle, no sector transition, the `d`-probe budget) emitted
    /// everything reachable and is cached with an unbounded span; only a
    /// walk stopped by the arc rule is bounded to the span it ran for.
    fn range_walk_cached_into(
        &self,
        start: NodeIdx,
        lo_pos: u8,
        hi_pos: u8,
        cache: &mut RouteCache,
        out: &mut Vec<NodeIdx>,
    ) {
        let d = self.overlay.dimension();
        let span = u64::from(CycloidId::cw_cyclic_dist(lo_pos, hi_pos, d));
        let epoch = self.overlay.epoch();
        out.push(start);
        if let Some(steps) = cache.walk_lookup(0, start, u64::from(lo_pos), span, epoch) {
            for s in steps {
                if s.dist > span {
                    break;
                }
                out.push(s.node);
            }
            return;
        }
        // Two-touch admission (see `RouteCache::admit_walk`): record only
        // keys seen before, so one-shot walks skip the per-step copy.
        let mut rec = if cache.admit_walk(0, start, u64::from(lo_pos), epoch) {
            Some(cache.begin_walk())
        } else {
            None
        };
        let mut cur = start;
        let mut rule_stop = false;
        for _ in 0..d {
            let Some(next) = self.overlay.cluster_successor(cur).ok().flatten() else {
                break;
            };
            if next == start {
                break;
            }
            let Some(p) = self.transition_position(cur, next) else {
                break;
            };
            let dist = u64::from(CycloidId::cw_cyclic_dist(lo_pos, p, d));
            if dist > span {
                rule_stop = true;
                break;
            }
            if let Some(rec) = rec.as_mut() {
                rec.push(WalkStep { node: next, dist });
            }
            out.push(next);
            cur = next;
        }
        if let Some(rec) = rec {
            let stored_span = if rule_stop { span } else { u64::MAX };
            cache.commit_walk(0, start, u64::from(lo_pos), stored_span, epoch, rec);
        }
    }

    /// First cyclic position, walking clockwise from `cur`, that is owned
    /// by `next` rather than `cur` (the boundary between their sectors
    /// under the nearest-with-clockwise-tie ownership rule).
    fn transition_position(&self, cur: NodeIdx, next: NodeIdx) -> Option<u8> {
        let d = self.overlay.dimension();
        let ck = self.overlay.id_of(cur).ok()?.cyclic;
        let nk = self.overlay.id_of(next).ok()?.cyclic;
        for step in 1..=d {
            let p = (ck + step) % d;
            let dc = CycloidId::cyclic_dist(ck, p, d);
            let dn = CycloidId::cyclic_dist(nk, p, d);
            let next_wins = dn < dc
                || (dn == dc
                    && CycloidId::cw_cyclic_dist(p, nk, d) == dn
                    && CycloidId::cw_cyclic_dist(p, ck, d) != dc);
            if next_wins {
                return Some(p);
            }
        }
        None
    }

    /// Probe every member of `start`'s cluster (ablation mode: a range
    /// query without locality-preserving placement cannot stop early).
    fn full_cluster_walk_into(&self, start: NodeIdx, out: &mut Vec<NodeIdx>) {
        let d = self.overlay.dimension();
        out.push(start);
        let mut cur = start;
        for _ in 0..d {
            match self.overlay.cluster_successor(cur).ok().flatten() {
                Some(next) if next != start => {
                    out.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
    }

    fn matches_in_into(
        &self,
        node: NodeIdx,
        attr: grid_resource::AttrId,
        t: &ValueTarget,
        out: &mut Vec<usize>,
    ) {
        self.directories[node.0].matching_owners_into(attr, t, out);
    }

    /// Fault-aware variant of [`Self::range_walk_into`]: each advance is
    /// a probe message subject to the plan's drop coin (one retry) and to
    /// the dead-member check. Returns `true` when a fault truncated the
    /// walk before the stop rule fired.
    #[allow(clippy::too_many_arguments)] // mirrors the plain walk plus the fault triple
    fn range_walk_faulty_into(
        &self,
        start: NodeIdx,
        lo_pos: u8,
        hi_pos: u8,
        plan: &FaultPlan,
        walk_msg: u64,
        acct: &mut FaultAccount,
        out: &mut Vec<NodeIdx>,
    ) -> bool {
        let d = self.overlay.dimension();
        let span = CycloidId::cw_cyclic_dist(lo_pos, hi_pos, d);
        out.push(start);
        let mut cur = start;
        for step in 1..=usize::from(d) {
            let Some(next) = self.overlay.cluster_successor(cur).ok().flatten() else {
                break;
            };
            if next == start {
                break;
            }
            let Some(p) = self.transition_position(cur, next) else {
                break;
            };
            if CycloidId::cw_cyclic_dist(lo_pos, p, d) > span {
                break;
            }
            if !probe_step(plan, walk_msg, step, next, acct) {
                return true;
            }
            out.push(next);
            cur = next;
        }
        false
    }

    /// Fault-aware variant of [`Self::full_cluster_walk_into`].
    fn full_cluster_walk_faulty_into(
        &self,
        start: NodeIdx,
        plan: &FaultPlan,
        walk_msg: u64,
        acct: &mut FaultAccount,
        out: &mut Vec<NodeIdx>,
    ) -> bool {
        let d = self.overlay.dimension();
        out.push(start);
        let mut cur = start;
        for step in 1..=usize::from(d) {
            match self.overlay.cluster_successor(cur).ok().flatten() {
                Some(next) if next != start => {
                    if !probe_step(plan, walk_msg, step, next, acct) {
                        return true;
                    }
                    out.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        false
    }
}

impl ResourceDiscovery for Lorm {
    fn clone_box(&self) -> Box<dyn ResourceDiscovery + Send + Sync> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "LORM"
    }

    fn num_physical(&self) -> usize {
        self.phys_node.iter().filter(|n| n.is_some()).count()
    }

    fn is_live(&self, phys: usize) -> bool {
        self.phys_node.get(phys).copied().flatten().is_some()
    }

    fn place_all(&mut self, reports: &[ResourceInfo]) {
        self.directories = vec![Directory::new(); self.overlay.arena_len()];
        self.total_pieces = 0;
        self.sel.rebuild(reports);
        if self.repl > 1 {
            // Re-placement invalidates old replica attribution; the next
            // repair round re-seeds replicas from the new primaries.
            self.replicas = vec![ReplicaStore::new(); self.overlay.arena_len()];
        }
        match self.mode {
            BuildMode::Bulk => {
                // Resolve every report's root, group by root with one
                // stable sort, and hand each node its whole batch — the
                // same directories the per-report loop produces, without
                // one shifting `Vec::insert` per new attribute bucket.
                let mut routed: Vec<(NodeIdx, ResourceInfo)> = reports
                    .iter()
                    .filter_map(|&r| {
                        let id = self.keys.resc_id(r.attr, r.value);
                        self.overlay.owner_of(id).ok().map(|root| (root, r))
                    })
                    .collect();
                self.total_pieces = routed.len();
                routed.sort_by_key(|&(root, _)| root);
                let mut rest = routed.as_slice();
                while let Some(&(root, _)) = rest.first() {
                    let run = rest.iter().take_while(|&&(n, _)| n == root).count();
                    self.directories[root.0]
                        .bulk_load(rest[..run].iter().map(|&(_, r)| r).collect());
                    rest = &rest[run..];
                }
            }
            BuildMode::Incremental => {
                for &r in reports {
                    let id = self.keys.resc_id(r.attr, r.value);
                    if let Ok(root) = self.overlay.owner_of(id) {
                        self.store(root, r);
                    }
                }
            }
        }
    }

    fn register(&mut self, info: ResourceInfo) -> Result<LookupTally, DhtError> {
        let from = self.node_of(info.owner)?;
        let id = self.keys.resc_id(info.attr, info.value);
        let route = self.overlay.route_stats(from, id)?;
        self.store(route.terminal, info);
        self.sel.record(&info);
        Ok(LookupTally { hops: route.hops, lookups: 1, visited: 1, matches: 0 })
    }

    fn selectivity(&self) -> Option<&SelectivityEstimator> {
        Some(&self.sel)
    }

    fn query_from(&self, phys: usize, q: &Query) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub: Vec<Vec<usize>> = Vec::with_capacity(q.subs.len());
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        // One probe-list scratch serves every sub-query of this query.
        let mut walk: Vec<NodeIdx> = Vec::new();
        for sub in &q.subs {
            let (lookup_value, bounds) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => {
                    (low, Some((self.keys.cyclic_of(low), self.keys.cyclic_of(high))))
                }
            };
            let resc_id = self.keys.resc_id(sub.attr, lookup_value);
            let route = self.overlay.route_stats(from, resc_id)?;
            tally.lookups += 1;
            tally.hops += route.hops;
            walk.clear();
            match bounds {
                None => walk.push(route.terminal),
                Some((lo, hi)) => {
                    match self.keys.placement() {
                        // Proposition 3.1: matching roots are contiguous.
                        Placement::Lph => self.range_walk_into(route.terminal, lo, hi, &mut walk),
                        // Ablation: without locality preservation, matches
                        // can sit anywhere in the cluster — probe it all.
                        Placement::Hashed => self.full_cluster_walk_into(route.terminal, &mut walk),
                    }
                }
            }
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                self.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_cached(
        &self,
        phys: usize,
        q: &Query,
        cache: &mut RouteCache,
    ) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub: Vec<Vec<usize>> = Vec::with_capacity(q.subs.len());
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        // One probe-list scratch serves every sub-query of this query.
        let mut walk: Vec<NodeIdx> = Vec::new();
        for sub in &q.subs {
            let (lookup_value, bounds) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => {
                    (low, Some((self.keys.cyclic_of(low), self.keys.cyclic_of(high))))
                }
            };
            let resc_id = self.keys.resc_id(sub.attr, lookup_value);
            let route = route_stats_cached(&self.overlay, from, resc_id, 0, cache)?;
            tally.lookups += 1;
            tally.hops += route.hops;
            walk.clear();
            match bounds {
                None => walk.push(route.terminal),
                Some((lo, hi)) => {
                    match self.keys.placement() {
                        Placement::Lph => {
                            self.range_walk_cached_into(route.terminal, lo, hi, cache, &mut walk);
                        }
                        // Ablation mode stays uncached: the full-cluster
                        // walk has no stop rule worth memoizing.
                        Placement::Hashed => self.full_cluster_walk_into(route.terminal, &mut walk),
                    }
                }
            }
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                self.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_faulty(
        &self,
        phys: usize,
        q: &Query,
        plan: &FaultPlan,
        msg_seed: u64,
    ) -> Result<FaultyOutcome, DhtError> {
        if plan.is_inert() {
            return Ok(FaultyOutcome::complete(self.query_from(phys, q)?, q.arity()));
        }
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut acct = FaultAccount::default();
        let mut per_sub: Vec<Vec<usize>> = Vec::new();
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        let mut walk: Vec<NodeIdx> = Vec::new();
        let mut subs_resolved = 0usize;
        let mut subs_answered = 0usize;
        for (i, sub) in q.subs.iter().enumerate() {
            // Per-query hop budget: once exhausted, remaining sub-queries
            // fail unattempted.
            if tally.hops >= plan.hop_budget() {
                continue;
            }
            let sub_msg = sub_msg_id(msg_seed, i);
            let (lookup_value, bounds) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => {
                    (low, Some((self.keys.cyclic_of(low), self.keys.cyclic_of(high))))
                }
            };
            let resc_id = self.keys.resc_id(sub.attr, lookup_value);
            tally.lookups += 1;
            let route =
                match route_with_retry(&self.overlay, from, resc_id, plan, sub_msg, &mut acct) {
                    Ok(r) => r,
                    Err(DhtError::MessageDropped { hops } | DhtError::DeadHop { hops }) => {
                        tally.hops += hops;
                        continue;
                    }
                    Err(e) => return Err(e),
                };
            tally.hops += route.hops;
            subs_answered += 1;
            walk.clear();
            let truncated = match bounds {
                None => {
                    walk.push(route.terminal);
                    false
                }
                Some((lo, hi)) => {
                    let wm = walk_msg_id(sub_msg);
                    match self.keys.placement() {
                        Placement::Lph => self.range_walk_faulty_into(
                            route.terminal,
                            lo,
                            hi,
                            plan,
                            wm,
                            &mut acct,
                            &mut walk,
                        ),
                        Placement::Hashed => self.full_cluster_walk_faulty_into(
                            route.terminal,
                            plan,
                            wm,
                            &mut acct,
                            &mut walk,
                        ),
                    }
                }
            };
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                self.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            if !truncated {
                subs_resolved += 1;
            }
            per_sub.push(owners);
        }
        let outcome = QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all };
        Ok(FaultyOutcome {
            outcome,
            subs_resolved,
            subs_answered,
            subs_total: q.arity(),
            retries: acct.retries,
            dropped_msgs: acct.dropped_msgs,
        })
    }

    fn directory_loads(&self) -> LoadDist {
        let counts: Vec<usize> =
            self.overlay.live_nodes().iter().map(|&n| self.directories[n.0].len()).collect();
        LoadDist::from_counts(&counts)
    }

    fn total_pieces(&self) -> usize {
        self.total_pieces
    }

    fn outlinks_per_node(&self) -> LoadDist {
        let links: Vec<usize> = self
            .overlay
            .live_nodes()
            .iter()
            .map(|&n| self.overlay.outlinks(n).unwrap_or(0))
            .collect();
        LoadDist::from_counts(&links)
    }

    fn join_physical(&mut self, rng: &mut SmallRng) -> Result<usize, DhtError> {
        let slot = self.overlay.random_free_slot(rng).ok_or(DhtError::IdSpaceExhausted)?;
        let idx = self.overlay.join_with_id(slot)?;
        self.directories.resize(self.overlay.arena_len(), Directory::new());
        if self.repl > 1 {
            self.replicas.resize(self.overlay.arena_len(), ReplicaStore::new());
        }
        let phys = self.phys_node.len();
        self.phys_node.push(Some(idx));
        Ok(phys)
    }

    fn leave_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        // Hand off stored objects before departing (Cycloid's
        // self-organization keeps stored objects available). The node's
        // replica store dies with it.
        let handoff = self.directories[node.0].drain();
        if let Some(store) = self.replicas.get_mut(node.0) {
            store.clear();
        }
        self.overlay.leave(node)?;
        self.phys_node[phys] = None;
        self.total_pieces -= handoff.len();
        for info in handoff {
            let id = self.keys.resc_id(info.attr, info.value);
            if let Ok(root) = self.overlay.owner_of(id) {
                self.store(root, info);
            }
        }
        Ok(())
    }

    fn fail_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        let lost = self.directories[node.0].drain();
        self.total_pieces -= lost.len();
        if let Some(store) = self.replicas.get_mut(node.0) {
            store.clear();
        }
        self.overlay.fail(node)?;
        self.phys_node[phys] = None;
        Ok(())
    }

    fn stabilize(&mut self) {
        self.overlay.rebuild_all_links();
        self.repair_replicas();
    }

    fn set_replication(&mut self, k: usize) {
        self.repl = k.max(1);
        self.repair = RepairStats::new();
        if self.repl <= 1 {
            self.replicas = Vec::new();
            return;
        }
        self.replicas = vec![ReplicaStore::new(); self.overlay.arena_len()];
        self.replicate_primaries(false);
    }

    fn replication(&self) -> usize {
        self.repl
    }

    fn repair_stats(&self) -> RepairStats {
        self.repair
    }

    fn surviving_pieces_into(&self, out: &mut Vec<PieceKey>) {
        for &n in self.overlay.live_nodes() {
            if let Some(dir) = self.directories.get(n.0) {
                out.extend(dir.iter().map(PieceKey::of));
            }
            if let Some(store) = self.replicas.get(n.0) {
                store.keys_into(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_resource::{AttrId, QueryMix, SubQuery, Workload, WorkloadConfig};
    use rand::SeedableRng;

    fn small_workload() -> (Workload, Lorm) {
        let mut rng = SmallRng::seed_from_u64(0xAB);
        let cfg = WorkloadConfig {
            num_attrs: 30,
            values_per_attr: 100,
            num_nodes: 512,
            ..Default::default()
        };
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut l =
            Lorm::new(512, &w.space, LormConfig { dimension: 8, seed: 0xD0, ..Default::default() });
        l.place_all(&w.reports);
        (w, l)
    }

    /// Full-population fixture: every Cycloid slot occupied, so clusters
    /// have all `d = 8` members (the paper's 2048-node setup).
    fn full_workload() -> (Workload, Lorm) {
        let mut rng = SmallRng::seed_from_u64(0xAC);
        let cfg = WorkloadConfig {
            num_attrs: 30,
            values_per_attr: 100,
            num_nodes: 2048,
            ..Default::default()
        };
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut l = Lorm::new(
            2048,
            &w.space,
            LormConfig { dimension: 8, seed: 0xD1, ..Default::default() },
        );
        l.place_all(&w.reports);
        (w, l)
    }

    #[test]
    fn cached_query_is_identical_to_plain() {
        let (w, mut l) = small_workload();
        let mut cache = RouteCache::new();
        let mut rng = SmallRng::seed_from_u64(0xCA);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            for i in 0..60usize {
                let q = w.random_query(3, mix, &mut rng);
                let plain = l.query_from(i % 512, &q).unwrap();
                let cached = l.query_from_cached(i % 512, &q, &mut cache).unwrap();
                assert_eq!(cached, plain, "{mix:?} query {i}");
            }
        }
        assert!(cache.hits() > 0, "repeated sub-query lookups must hit");
        // Churn bumps the epoch: every stale entry misses, and the cached
        // path keeps matching the plain path on the mutated overlay.
        l.leave_physical(7).unwrap();
        l.stabilize();
        l.place_all(&w.reports);
        for i in 0..30usize {
            let q = w.random_query(3, QueryMix::Range, &mut rng);
            let plain = l.query_from(i % 500 + 8, &q).unwrap();
            let cached = l.query_from_cached(i % 500 + 8, &q, &mut cache).unwrap();
            assert_eq!(cached, plain, "post-churn query {i}");
        }
    }

    #[test]
    fn cached_faulty_query_is_identical_to_plain_faulty() {
        let (w, l) = small_workload();
        let mut cache = RouteCache::new();
        let mut rng = SmallRng::seed_from_u64(0xCB);
        // Inert plans short-circuit through the cache; non-inert plans
        // must bypass it (per-message coins are not cacheable).
        for plan in [FaultPlan::new(3, 0.0, 0.0).unwrap(), FaultPlan::new(7, 0.2, 0.05).unwrap()] {
            for i in 0..40u64 {
                let q = w.random_query(2, QueryMix::Range, &mut rng);
                let plain = l.query_from_faulty(2, &q, &plan, i).unwrap();
                let cached = l.query_from_faulty_cached(2, &q, &plan, i, &mut cache).unwrap();
                assert_eq!(cached, plain, "inert={} msg {i}", plan.is_inert());
            }
        }
    }

    /// Brute-force reference: owners whose reports satisfy the target.
    fn brute(w: &Workload, attr: AttrId, t: &ValueTarget) -> Vec<usize> {
        let mut v: Vec<usize> = w
            .reports
            .iter()
            .filter(|r| r.attr == attr && t.matches(r.value))
            .map(|r| r.owner)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn placement_conserves_pieces() {
        let (w, l) = small_workload();
        assert_eq!(l.total_pieces(), w.reports.len());
        assert_eq!(l.directory_loads().total() as usize, w.reports.len());
    }

    #[test]
    fn attribute_lives_in_one_cluster() {
        let (w, l) = small_workload();
        for attr in w.space.ids() {
            let mut clusters: Vec<u32> = l
                .overlay()
                .live_nodes()
                .iter()
                .filter(|&&n| l.directory(n).iter().any(|r| r.attr == attr))
                .map(|&n| l.overlay().id_of(n).unwrap().cubical)
                .collect();
            clusters.sort_unstable();
            clusters.dedup();
            assert!(clusters.len() <= 1, "attribute {attr} spread over {clusters:?}");
        }
    }

    #[test]
    fn point_query_finds_exactly_matching_owners() {
        let (w, l) = small_workload();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let q = w.random_query(1, QueryMix::NonRange, &mut rng);
            let sub = q.subs[0];
            let out = l.query_from(3, &q).unwrap();
            let mut got = out.owners.clone();
            got.sort_unstable();
            assert_eq!(got, brute(&w, sub.attr, &sub.target), "point query {sub:?}");
        }
    }

    #[test]
    fn range_query_is_complete() {
        let (w, l) = small_workload();
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..200 {
            let q = w.random_query(1, QueryMix::Range, &mut rng);
            let sub = q.subs[0];
            let out = l.query_from(5, &q).unwrap();
            let mut got = out.owners.clone();
            got.sort_unstable();
            assert_eq!(got, brute(&w, sub.attr, &sub.target), "range query {sub:?}");
        }
    }

    #[test]
    fn multi_attribute_join_intersects() {
        let (w, l) = small_workload();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let q = w.random_query(3, QueryMix::Range, &mut rng);
            let out = l.query_from(0, &q).unwrap();
            let expected = grid_resource::discovery::join_owners(
                q.subs.iter().map(|s| brute(&w, s.attr, &s.target)).collect(),
            );
            let mut got = out.owners.clone();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn point_query_visits_one_node_per_attribute() {
        let (w, l) = small_workload();
        let mut rng = SmallRng::seed_from_u64(10);
        for arity in [1usize, 4, 8] {
            let q = w.random_query(arity, QueryMix::NonRange, &mut rng);
            let out = l.query_from(1, &q).unwrap();
            assert_eq!(out.tally.visited, arity);
            assert_eq!(out.tally.lookups, arity);
        }
    }

    #[test]
    fn range_visits_bounded_by_cluster_size() {
        let (w, l) = small_workload();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let q = w.random_query(1, QueryMix::Range, &mut rng);
            let out = l.query_from(2, &q).unwrap();
            assert!(
                out.tally.visited <= 8,
                "range probes {} exceed cluster size d=8",
                out.tally.visited
            );
        }
    }

    #[test]
    fn average_range_visits_near_one_plus_quarter_d() {
        // Theorem 4.9: LORM visits 1 + d/4 nodes per attribute on average
        // (3 for d = 8). Requires full clusters, as in the paper's setup.
        let (w, l) = full_workload();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut total = 0usize;
        let trials = 1000;
        for _ in 0..trials {
            let q = w.random_query(1, QueryMix::Range, &mut rng);
            total += l.query_from(0, &q).unwrap().tally.visited;
        }
        let avg = total as f64 / trials as f64;
        assert!((2.0..4.2).contains(&avg), "avg range visits {avg}, expected ≈3");
    }

    #[test]
    fn full_domain_range_is_complete() {
        // Regression: when root(low) == root(high) but the range arc
        // covers the whole sector ring (e.g. two-member clusters), the
        // walk must still probe the interior members.
        let (w, l) = small_workload();
        let (dmin, dmax) = w.space.domain();
        for attr in w.space.ids() {
            let q = Query::new(vec![SubQuery {
                attr,
                target: ValueTarget::Range { low: dmin, high: dmax },
            }])
            .unwrap();
            let out = l.query_from(0, &q).unwrap();
            let mut got = out.owners.clone();
            got.sort_unstable();
            let t = ValueTarget::Range { low: dmin, high: dmax };
            assert_eq!(got, brute(&w, attr, &t), "full-domain range on {attr}");
        }
    }

    #[test]
    fn register_routes_and_stores() {
        let (w, mut l) = small_workload();
        let before = l.total_pieces();
        let info = ResourceInfo { attr: AttrId(0), value: 42.0, owner: 17 };
        let t = l.register(info).unwrap();
        assert_eq!(l.total_pieces(), before + 1);
        assert_eq!(t.lookups, 1);
        // the new piece is findable
        let q = Query::new(vec![SubQuery { attr: AttrId(0), target: ValueTarget::Point(42.0) }])
            .unwrap();
        let out = l.query_from(0, &q).unwrap();
        assert!(out.owners.contains(&17));
        let _ = w;
    }

    #[test]
    fn register_from_departed_owner_errors() {
        let (_, mut l) = small_workload();
        l.leave_physical(100).unwrap();
        let info = ResourceInfo { attr: AttrId(1), value: 5.0, owner: 100 };
        assert!(l.register(info).is_err());
    }

    #[test]
    fn leave_hands_off_directory() {
        let (w, mut l) = small_workload();
        let victim_node = l.node_of(200).unwrap();
        let victim_load = l.directory(victim_node).len();
        let total = l.total_pieces();
        l.leave_physical(200).unwrap();
        assert_eq!(l.total_pieces(), total, "handoff must not lose pieces");
        assert!(!l.is_live(200));
        assert_eq!(l.num_physical(), 511);
        let _ = (victim_load, w);
    }

    #[test]
    fn queries_survive_churn_with_repair() {
        let (w, mut l) = small_workload();
        let mut rng = SmallRng::seed_from_u64(13);
        for i in 0..30 {
            if i % 2 == 0 {
                let _ = l.join_physical(&mut rng);
            } else {
                // pick a live physical node to remove
                let phys = (0..l.phys_node.len()).find(|&p| l.is_live(p)).unwrap();
                l.leave_physical(phys).unwrap();
            }
        }
        l.stabilize();
        l.place_all(&w.reports);
        let mut rng2 = SmallRng::seed_from_u64(14);
        for _ in 0..50 {
            let q = w.random_query(2, QueryMix::Range, &mut rng2);
            let phys = (0..l.phys_node.len()).rev().find(|&p| l.is_live(p)).unwrap();
            let out = l.query_from(phys, &q).unwrap();
            let expected = grid_resource::discovery::join_owners(
                q.subs.iter().map(|s| brute(&w, s.attr, &s.target)).collect(),
            );
            let mut got = out.owners.clone();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn outlinks_stay_constant() {
        let (_, l) = small_workload();
        let links = l.outlinks_per_node();
        assert!(links.max() <= 8.0, "constant degree violated: {}", links.max());
        assert!(links.mean() > 3.0);
    }

    #[test]
    fn inert_fault_plan_query_is_identical_to_plain() {
        let (w, l) = small_workload();
        let mut rng = SmallRng::seed_from_u64(21);
        let plan = FaultPlan::new(0x51EE7, 0.0, 0.0).unwrap();
        for i in 0..40u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let plain = l.query_from(1, &q).unwrap();
            let faulty = l.query_from_faulty(1, &q, &plan, 1000 + i).unwrap();
            assert_eq!(faulty.outcome, plain);
            assert!(faulty.is_complete());
            assert_eq!(faulty.retries, 0);
            assert_eq!(faulty.dropped_msgs, 0);
        }
    }

    #[test]
    fn total_loss_fails_every_remote_sub_query() {
        let (w, l) = small_workload();
        let mut rng = SmallRng::seed_from_u64(22);
        let plan = FaultPlan::new(0xBAD, 1.0, 0.0).unwrap();
        let mut failed = 0usize;
        for i in 0..40u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let f = l.query_from_faulty(2, &q, &plan, i).unwrap();
            // Only a sub whose root happens to be the querier itself can
            // survive total loss (zero-hop lookup, but the walk probes
            // still all drop — so the walk stays at one node).
            assert!(f.subs_resolved <= f.subs_answered);
            assert!(f.dropped_msgs > 0);
            if f.is_failed() {
                failed += 1;
            }
        }
        assert!(failed >= 35, "total loss should fail nearly every query, failed={failed}");
    }

    #[test]
    fn faulty_queries_are_deterministic() {
        let (w, l) = small_workload();
        let plan = FaultPlan::new(0xFA11, 0.2, 0.1).unwrap();
        let mut rng_a = SmallRng::seed_from_u64(23);
        let mut rng_b = SmallRng::seed_from_u64(23);
        for i in 0..30u64 {
            let qa = w.random_query(3, QueryMix::Range, &mut rng_a);
            let qb = w.random_query(3, QueryMix::Range, &mut rng_b);
            let a = l.query_from_faulty(4, &qa, &plan, i).unwrap();
            let b = l.query_from_faulty(4, &qb, &plan, i).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn moderate_loss_degrades_some_queries_without_errors() {
        let (w, l) = small_workload();
        let plan = FaultPlan::new(0xFA12, 0.2, 0.05).unwrap();
        let mut rng = SmallRng::seed_from_u64(24);
        let (mut complete, mut partial, mut failed) = (0usize, 0usize, 0usize);
        for i in 0..120u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let f = l.query_from_faulty(5, &q, &plan, i).unwrap();
            match (f.is_complete(), f.is_failed()) {
                (true, _) => complete += 1,
                (_, true) => failed += 1,
                _ => partial += 1,
            }
        }
        assert_eq!(complete + partial + failed, 120);
        assert!(complete > 0, "20% loss with retry should still complete some queries");
        assert!(partial + failed > 0, "20% loss should degrade some queries");
    }

    #[test]
    fn replicated_pieces_survive_single_failures_between_repairs() {
        // Full occupancy: every cluster has all d = 8 members, so every
        // root has a live leaf-set replica target. With degree 2 and one
        // failure per repair window no piece can be lost. (At partial
        // occupancy single-member clusters have no replica target — the
        // durability sweep measures exactly that exposure.)
        let (_, mut l) = full_workload();
        l.set_replication(2);
        assert_eq!(l.replication(), 2);
        let mut initial = Vec::new();
        l.surviving_pieces_into(&mut initial);
        grid_resource::canonicalize_pieces(&mut initial);
        assert!(!initial.is_empty());
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        for round in 0..10 {
            let phys = loop {
                let p = rand::Rng::gen_range(&mut rng, 0..2048);
                if l.is_live(p) {
                    break p;
                }
            };
            l.fail_physical(phys).unwrap();
            l.stabilize();
            let mut now = Vec::new();
            l.surviving_pieces_into(&mut now);
            grid_resource::canonicalize_pieces(&mut now);
            assert_eq!(
                grid_resource::count_surviving(&initial, &now),
                initial.len(),
                "pieces lost in round {round}"
            );
        }
        assert!(l.repair_stats().transfers() > 0, "repair must have moved copies");
    }

    #[test]
    fn k1_replication_stays_a_no_op() {
        let (_, mut l) = small_workload();
        let mut before = Vec::new();
        l.surviving_pieces_into(&mut before);
        l.set_replication(1);
        l.stabilize();
        assert_eq!(l.replication(), 1);
        assert_eq!(l.repair_stats().rounds(), 0);
        let mut after = Vec::new();
        l.surviving_pieces_into(&mut after);
        assert_eq!(after, before);
    }

    #[test]
    fn directory_balance_beats_centralization() {
        // All information of an attribute spreads over its cluster's d
        // nodes, so the 99th percentile stays well below "everything on
        // one node" (k pieces, what SWORD would do). Theorem 4.4.
        let (w, l) = full_workload();
        let loads = l.directory_loads();
        let k = w.config().values_per_attr as f64;
        assert!(loads.p99() < k / 2.0, "p99 {} should be well below k = {k}", loads.p99());
    }
}
