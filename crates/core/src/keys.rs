//! Resource-identifier derivation: `rescID = (ℋ(value), H(attribute))`.

use cycloid::CycloidId;
use dht_core::{ConsistentHash, LocalityHash};
use grid_resource::{AttrId, AttributeSpace};

/// How values are mapped onto cluster positions.
///
/// `Lph` is LORM's design (order-preserving, enables the short range walk
/// of Proposition 3.1). `Hashed` destroys locality on purpose — the
/// ablation benches use it to show why the locality-preserving hash is
/// load-bearing: ranges then have to probe the whole cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Locality-preserving hash of the value (the paper's design).
    #[default]
    Lph,
    /// Uniform hash of the value (ablation: no range locality).
    Hashed,
}

/// Derives Cycloid resource identifiers from attribute/value pairs.
///
/// * cubical index = `H(attribute name) mod 2^d` — uniform placement of
///   attributes onto clusters;
/// * cyclic index = `ℋ(value)` over `[0, d)` — order-preserving placement
///   of values onto cluster positions, the property Proposition 3.1 needs.
#[derive(Debug, Clone)]
pub struct KeyDeriver {
    hash: ConsistentHash,
    lph: LocalityHash,
    /// Cached attribute-name hashes, indexed by `AttrId`.
    cubical: Vec<u32>,
    dimension: u8,
    placement: Placement,
}

impl KeyDeriver {
    /// Build a deriver for the attribute space on a dimension-`d` Cycloid.
    pub fn new(space: &AttributeSpace, dimension: u8, seed: u64) -> Self {
        Self::with_placement(space, dimension, seed, Placement::Lph)
    }

    /// Build a deriver with an explicit value-placement strategy.
    pub fn with_placement(
        space: &AttributeSpace,
        dimension: u8,
        seed: u64,
        placement: Placement,
    ) -> Self {
        let hash = ConsistentHash::new(seed);
        let mask = ((1u64 << dimension) - 1) as u32;
        let cubical = space.ids().map(|a| (hash.hash_str(space.name(a)) as u32) & mask).collect();
        Self { hash, lph: space.lph(dimension as u64), cubical, dimension, placement }
    }

    /// The value-placement strategy in effect.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The cluster responsible for an attribute.
    pub fn cluster_of(&self, attr: AttrId) -> u32 {
        self.cubical[attr.0 as usize]
    }

    /// The cyclic position of a value within its attribute's cluster.
    pub fn cyclic_of(&self, value: f64) -> u8 {
        match self.placement {
            Placement::Lph => self.lph.hash(value) as u8,
            Placement::Hashed => {
                (self.hash.hash_u64(value.to_bits()) % self.dimension as u64) as u8
            }
        }
    }

    /// Full resource identifier for an (attribute, value) pair.
    pub fn resc_id(&self, attr: AttrId, value: f64) -> CycloidId {
        CycloidId::new(self.cyclic_of(value), self.cluster_of(attr), self.dimension)
    }

    /// The consistent hash (exposed for systems reusing the same seed).
    pub fn consistent_hash(&self) -> &ConsistentHash {
        &self.hash
    }

    /// Dimension of the underlying Cycloid.
    pub fn dimension(&self) -> u8 {
        self.dimension
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AttributeSpace {
        AttributeSpace::synthetic(200, 1.0, 500.0).unwrap()
    }

    #[test]
    fn cluster_is_stable_per_attribute() {
        let kd = KeyDeriver::new(&space(), 8, 42);
        let a = AttrId(7);
        assert_eq!(kd.cluster_of(a), kd.cluster_of(a));
        assert!(kd.cluster_of(a) < 256);
    }

    #[test]
    fn different_seeds_move_clusters() {
        let s = space();
        let a = KeyDeriver::new(&s, 8, 1);
        let b = KeyDeriver::new(&s, 8, 2);
        let moved = s.ids().filter(|&x| a.cluster_of(x) != b.cluster_of(x)).count();
        assert!(moved > 150, "only {moved}/200 attributes moved");
    }

    #[test]
    fn attributes_spread_over_clusters() {
        let kd = KeyDeriver::new(&space(), 8, 3);
        let mut used: Vec<u32> = (0..200).map(|i| kd.cluster_of(AttrId(i))).collect();
        used.sort_unstable();
        used.dedup();
        // 200 balls into 256 bins: expect ~113 distinct minimum in theory;
        // anything above 100 shows uniform spreading.
        assert!(used.len() > 100, "{} distinct clusters", used.len());
    }

    #[test]
    fn cyclic_is_monotone_in_value() {
        let kd = KeyDeriver::new(&space(), 8, 4);
        let mut prev = 0u8;
        for v in 1..=500 {
            let c = kd.cyclic_of(v as f64);
            assert!(c >= prev, "ℋ must preserve order at v={v}");
            assert!(c < 8);
            prev = c;
        }
    }

    #[test]
    fn cyclic_covers_all_positions() {
        let kd = KeyDeriver::new(&space(), 8, 5);
        let mut seen = [false; 8];
        for v in 1..=500 {
            seen[kd.cyclic_of(v as f64) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "every cyclic sector must be reachable");
    }

    #[test]
    fn resc_id_combines_both_parts() {
        let kd = KeyDeriver::new(&space(), 8, 6);
        let id = kd.resc_id(AttrId(3), 250.0);
        assert_eq!(id.cubical, kd.cluster_of(AttrId(3)));
        assert_eq!(id.cyclic, kd.cyclic_of(250.0));
    }
}
