//! # lorm — Low-Overhead Range-query Multi-attribute resource discovery
//!
//! The paper's primary contribution (Shen & Apon & Xu, ICPADS 2007;
//! analyzed in the ICPP 2009 paper this workspace reproduces): a grid
//! resource discovery service built on a **single** hierarchical Cycloid
//! DHT that supports both multi-attribute and range queries with constant
//! per-node maintenance overhead.
//!
//! The idea in one paragraph: Cycloid identifiers are pairs
//! `(cyclic, cubical)`. LORM derives a resource identifier
//! `rescID = (ℋ(value), H(attribute))` — the consistent hash `H` selects
//! the **cluster** responsible for the attribute, and the
//! locality-preserving hash `ℋ` selects the **position inside the
//! cluster** by value. Every cluster is therefore a little ordered
//! directory for one attribute:
//!
//! * a **point query** is a single DHT lookup (`m` lookups for an
//!   `m`-attribute query, resolved in parallel and joined on `ip_addr`);
//! * a **range query** `[π1, π2]` is one lookup to `root(ℋ(π1))` followed
//!   by an intra-cluster successor walk to `root(ℋ(π2))` — at most `d`
//!   probes instead of the system-wide walks of Mercury/MAAN
//!   (Proposition 3.1 and Theorem 4.9);
//! * directory load spreads over the `d` nodes of the cluster instead of
//!   piling onto one node as in SWORD (Theorem 4.4).
//!
//! [`Lorm`] implements the [`grid_resource::ResourceDiscovery`] interface
//! used by the experiment harness; it can also be used directly as a
//! library, see the `quickstart` example at the workspace root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod keys;
mod planning;
pub mod semantic;
mod system;

pub use keys::{KeyDeriver, Placement};
pub use planning::QueryPlan;
pub use semantic::{SemanticCodec, SemanticDirectory};
pub use system::{Lorm, LormConfig};
