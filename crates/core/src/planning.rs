//! Multi-attribute query planning — moved to the trait level.
//!
//! The `Parallel`/`Sequential` planner that used to live here as
//! LORM-only inherent methods is now a capability of **every**
//! [`ResourceDiscovery`](grid_resource::ResourceDiscovery) system
//! (`query_planned` / `query_planned_cached` default methods), with a
//! third, selectivity-driven `Adaptive` plan on top. See
//! [`grid_resource::planner`] for the plan semantics and
//! [`grid_resource::selectivity`] for the per-attribute histograms the
//! adaptive plan orders by. This module re-exports [`QueryPlan`] so
//! `lorm::QueryPlan` keeps working, and keeps the LORM-specific plan
//! tests next to the system they exercise.

pub use grid_resource::QueryPlan;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lorm, LormConfig};
    use grid_resource::{QueryMix, ResourceDiscovery, Workload, WorkloadConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Workload, Lorm) {
        let mut rng = SmallRng::seed_from_u64(0x91A);
        let cfg = WorkloadConfig {
            num_attrs: 25,
            values_per_attr: 80,
            num_nodes: 896,
            ..Default::default()
        };
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut l = Lorm::new(896, &w.space, LormConfig { dimension: 7, ..Default::default() });
        l.place_all(&w.reports);
        (w, l)
    }

    #[test]
    fn plans_agree_on_answers() {
        let (w, l) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..120 {
            let arity = rng.gen_range(1..=5);
            let q = w.random_query(arity, QueryMix::Range, &mut rng);
            let phys = rng.gen_range(0..896);
            let mut a = l.query_planned(phys, &q, QueryPlan::Parallel).unwrap().owners;
            a.sort_unstable();
            for plan in [QueryPlan::Sequential, QueryPlan::Adaptive] {
                let mut b = l.query_planned(phys, &q, plan).unwrap().owners;
                b.sort_unstable();
                assert_eq!(a, b, "{plan:?} must return identical owners");
            }
        }
    }

    #[test]
    fn sequential_ships_fewer_matches() {
        let (w, l) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut par = 0usize;
        let mut seq = 0usize;
        let mut ada = 0usize;
        for _ in 0..150 {
            let q = w.random_query(4, QueryMix::Range, &mut rng);
            let phys = rng.gen_range(0..896);
            par += l.query_planned(phys, &q, QueryPlan::Parallel).unwrap().tally.matches;
            seq += l.query_planned(phys, &q, QueryPlan::Sequential).unwrap().tally.matches;
            ada += l.query_planned(phys, &q, QueryPlan::Adaptive).unwrap().tally.matches;
        }
        assert!(
            seq * 2 < par,
            "sequential should ship far fewer pieces: parallel {par} vs sequential {seq}"
        );
        assert!(
            ada <= seq,
            "most-selective-first should not ship more than document order: \
             adaptive {ada} vs sequential {seq}"
        );
    }

    #[test]
    fn sequential_short_circuits_on_empty_candidates() {
        let (w, l) = setup();
        let mut rng = SmallRng::seed_from_u64(3);
        // high-arity point conjunctions are almost always empty; the
        // sequential plan should then skip lookups
        let mut any_skipped = false;
        for _ in 0..60 {
            let q = w.random_query(8, QueryMix::NonRange, &mut rng);
            let phys = rng.gen_range(0..896);
            let out = l.query_planned(phys, &q, QueryPlan::Sequential).unwrap();
            if out.owners.is_empty() && out.tally.lookups < 8 {
                any_skipped = true;
                break;
            }
        }
        assert!(any_skipped, "empty conjunctions should short-circuit");
    }

    #[test]
    fn sequential_matches_count_pieces_shipped() {
        // Satellite pin for the accounting fix: at arity 1 every plan
        // ships exactly the sub-query's match list, so `matches` agrees
        // with the parallel tally piece-for-piece (duplicates included),
        // and at any arity `matches >= owners.len()`.
        let (w, l) = setup();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..60 {
            let q = w.random_query(1, QueryMix::Range, &mut rng);
            let phys = rng.gen_range(0..896);
            let par = l.query_planned(phys, &q, QueryPlan::Parallel).unwrap();
            for plan in [QueryPlan::Sequential, QueryPlan::Adaptive] {
                let out = l.query_planned(phys, &q, plan).unwrap();
                assert_eq!(
                    out.tally.matches, par.tally.matches,
                    "arity-1 {plan:?} must tally the same shipped pieces as parallel"
                );
            }
        }
        for arity in 2..=5 {
            let q = w.random_query(arity, QueryMix::Range, &mut rng);
            let phys = rng.gen_range(0..896);
            let out = l.query_planned(phys, &q, QueryPlan::Sequential).unwrap();
            assert!(
                out.tally.matches >= out.owners.len(),
                "shipped pieces can never undercount the final answer"
            );
        }
    }

    #[test]
    fn sequential_probes_are_deduplicated() {
        // Satellite pin for the probed dedup: no directory node appears
        // twice in the probe list of a sequential/adaptive resolution.
        let (w, l) = setup();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..40 {
            let q = w.random_query(4, QueryMix::Range, &mut rng);
            let phys = rng.gen_range(0..896);
            for plan in [QueryPlan::Sequential, QueryPlan::Adaptive] {
                let out = l.query_planned(phys, &q, plan).unwrap();
                let mut seen = out.probed.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(
                    seen.len(),
                    out.probed.len(),
                    "{plan:?} probe list must be duplicate-free"
                );
            }
        }
    }

    #[test]
    fn default_plan_is_parallel() {
        assert_eq!(QueryPlan::default(), QueryPlan::Parallel);
    }
}
