//! Multi-attribute query planning — an elaboration of LORM's resolution
//! strategy.
//!
//! §III resolves the sub-queries of a multi-attribute query **in
//! parallel** and joins the full owner sets at the requester. That
//! minimizes latency but ships every sub-query's complete match list back
//! to the requester. The classic database alternative resolves
//! sub-queries **sequentially**, threading the surviving candidate set
//! through: after the first sub-query, each directory node only returns
//! owners that are still candidates, so the transfer volume collapses to
//! roughly the most selective attribute's match count.
//!
//! The trade — same lookups and probes, lower transfer, higher latency
//! (sub-queries serialize) — is quantified by the `ablate_query_plan`
//! study. `matches` in the returned tally counts the pieces actually
//! shipped to the requester, which is the metric the plans differ on.

use crate::system::Lorm;
use dht_core::{DhtError, LookupTally};
use grid_resource::{Query, QueryOutcome, ResourceDiscovery};

/// How a multi-attribute query is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryPlan {
    /// All sub-queries in parallel; join at the requester (§III).
    #[default]
    Parallel,
    /// Sequential resolution threading the candidate set: each subsequent
    /// directory filters against the survivors of the previous step.
    Sequential,
}

impl Lorm {
    /// Resolve `q` under an explicit [`QueryPlan`].
    ///
    /// `Parallel` delegates to the standard
    /// [`ResourceDiscovery::query_from`]; `Sequential` resolves sub-queries
    /// in order, intersecting as it goes and short-circuiting when the
    /// candidate set empties (remaining sub-queries are skipped entirely —
    /// their lookups never happen).
    pub fn query_planned(
        &self,
        phys: usize,
        q: &Query,
        plan: QueryPlan,
    ) -> Result<QueryOutcome, DhtError> {
        match plan {
            QueryPlan::Parallel => self.query_from(phys, q),
            QueryPlan::Sequential => self.query_sequential(phys, q),
        }
    }

    fn query_sequential(&self, phys: usize, q: &Query) -> Result<QueryOutcome, DhtError> {
        let mut tally = LookupTally::default();
        let mut probed_all = Vec::new();
        let mut survivors: Option<Vec<usize>> = None;
        // One single-sub scratch query reused across the sequential steps.
        let mut single = Query { subs: Vec::with_capacity(1) };
        for sub in &q.subs {
            if matches!(survivors.as_deref(), Some([])) {
                break; // short-circuit: nothing can match anymore
            }
            single.subs.clear();
            single.subs.push(*sub);
            let out = self.query_from(phys, &single)?;
            tally.hops += out.tally.hops;
            tally.lookups += out.tally.lookups;
            tally.visited += out.tally.visited;
            probed_all.extend(out.probed);
            let mut found = out.owners;
            found.sort_unstable();
            found.dedup();
            let next = match survivors {
                None => found,
                Some(prev) => {
                    // the directory ships only survivors onward
                    found.retain(|o| prev.binary_search(o).is_ok());
                    found
                }
            };
            // transfer volume = what actually travels back
            tally.matches += next.len();
            survivors = Some(next);
        }
        Ok(QueryOutcome { tally, owners: survivors.unwrap_or_default(), probed: probed_all })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LormConfig;
    use grid_resource::{QueryMix, Workload, WorkloadConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Workload, Lorm) {
        let mut rng = SmallRng::seed_from_u64(0x91A);
        let cfg = WorkloadConfig {
            num_attrs: 25,
            values_per_attr: 80,
            num_nodes: 896,
            ..Default::default()
        };
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut l = Lorm::new(896, &w.space, LormConfig { dimension: 7, ..Default::default() });
        l.place_all(&w.reports);
        (w, l)
    }

    #[test]
    fn plans_agree_on_answers() {
        let (w, l) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..120 {
            let arity = rng.gen_range(1..=5);
            let q = w.random_query(arity, QueryMix::Range, &mut rng);
            let phys = rng.gen_range(0..896);
            let mut a = l.query_planned(phys, &q, QueryPlan::Parallel).unwrap().owners;
            let mut b = l.query_planned(phys, &q, QueryPlan::Sequential).unwrap().owners;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "plans must return identical owners");
        }
    }

    #[test]
    fn sequential_ships_fewer_matches() {
        let (w, l) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut par = 0usize;
        let mut seq = 0usize;
        for _ in 0..150 {
            let q = w.random_query(4, QueryMix::Range, &mut rng);
            let phys = rng.gen_range(0..896);
            par += l.query_planned(phys, &q, QueryPlan::Parallel).unwrap().tally.matches;
            seq += l.query_planned(phys, &q, QueryPlan::Sequential).unwrap().tally.matches;
        }
        assert!(
            seq * 3 < par,
            "sequential should ship far fewer pieces: parallel {par} vs sequential {seq}"
        );
    }

    #[test]
    fn sequential_short_circuits_on_empty_candidates() {
        let (w, l) = setup();
        let mut rng = SmallRng::seed_from_u64(3);
        // high-arity point conjunctions are almost always empty; the
        // sequential plan should then skip lookups
        let mut any_skipped = false;
        for _ in 0..60 {
            let q = w.random_query(8, QueryMix::NonRange, &mut rng);
            let phys = rng.gen_range(0..896);
            let out = l.query_planned(phys, &q, QueryPlan::Sequential).unwrap();
            if out.owners.is_empty() && out.tally.lookups < 8 {
                any_skipped = true;
                break;
            }
        }
        assert!(any_skipped, "empty conjunctions should short-circuit");
    }

    #[test]
    fn default_plan_is_parallel() {
        assert_eq!(QueryPlan::default(), QueryPlan::Parallel);
    }
}
