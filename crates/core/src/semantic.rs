//! Semantic resource discovery — the paper's stated future work.
//!
//! §VI: *"We plan to further explore and elaborate upon the LORM design to
//! discover resources based on semantic information."* The paper's model
//! already allows string descriptions ("OS=Linux") wherever values appear;
//! this module makes them first-class:
//!
//! * a description is encoded with an **order-preserving string code**
//!   ([`dht_core::lex_hash`]: first eight bytes, big-endian), scaled
//!   monotonically into the attribute's numeric value domain;
//! * lexicographic order is preserved end-to-end, so a **prefix query**
//!   ("every resource whose OS starts with `linux`") is exactly a LORM
//!   range query over `[code(prefix), code(prefix⁺)]` — one lookup plus an
//!   intra-cluster walk, never a broadcast;
//! * descriptions sharing their first eight bytes land on the same
//!   directory position. That coarsens *placement*, not correctness: the
//!   caller keeps the description table ([`SemanticDirectory`]) and
//!   filters candidates exactly.
//!
//! The encoding brings string attributes into the same machinery that
//! Proposition 3.1 covers, so every theorem about range queries applies
//! unchanged to prefix queries.

use dht_core::{lex_hash, lex_prefix_end};
use grid_resource::{AttrId, AttributeSpace, Query, SubQuery, ValueTarget};
use std::collections::BTreeMap;

/// Encodes string descriptions into an attribute's value domain, order
/// preserved.
///
/// ```
/// use grid_resource::AttributeSpace;
/// use lorm::semantic::SemanticCodec;
///
/// let space = AttributeSpace::from_names(["os"], 1.0, 1000.0).unwrap();
/// let codec = SemanticCodec::new(&space);
/// assert!(codec.encode("linux") < codec.encode("windows"));
/// let (lo, hi) = codec.prefix_range("linux");
/// let v = codec.encode("linux-6.1");
/// assert!(v >= lo && v <= hi);
/// ```
#[derive(Debug, Clone)]
pub struct SemanticCodec {
    min: f64,
    max: f64,
}

impl SemanticCodec {
    /// A codec for the attribute space's shared value domain.
    pub fn new(space: &AttributeSpace) -> Self {
        let (min, max) = space.domain();
        Self { min, max }
    }

    /// Encode a description as a value in `[min, max]`, monotone in
    /// lexicographic order.
    pub fn encode(&self, desc: &str) -> f64 {
        let frac = lex_hash(desc) as f64 / u64::MAX as f64;
        self.min + frac * (self.max - self.min)
    }

    /// The value range covering every description with this prefix.
    pub fn prefix_range(&self, prefix: &str) -> (f64, f64) {
        let lo = lex_hash(prefix) as f64 / u64::MAX as f64;
        let hi = lex_prefix_end(prefix) as f64 / u64::MAX as f64;
        (self.min + lo * (self.max - self.min), self.min + hi * (self.max - self.min))
    }

    /// Build the sub-query matching descriptions with the given prefix.
    pub fn prefix_subquery(&self, attr: AttrId, prefix: &str) -> SubQuery {
        let (low, high) = self.prefix_range(prefix);
        SubQuery { attr, target: ValueTarget::Range { low, high } }
    }

    /// Build a whole prefix query over several described attributes.
    pub fn prefix_query(&self, parts: &[(AttrId, &str)]) -> Query {
        Query::new(parts.iter().map(|&(a, p)| self.prefix_subquery(a, p)).collect())
            .expect("prefix ranges are well-formed")
    }
}

/// The requester-side description table: remembers what each owner
/// advertised so candidate sets coming back from the DHT can be filtered
/// exactly (the eight-byte code horizon makes the DHT-side match
/// conservative, never lossy).
/// Entries live in a `BTreeMap` so iteration order is a function of the
/// recorded keys alone, never of per-process hasher state.
#[derive(Debug, Clone, Default)]
pub struct SemanticDirectory {
    descs: BTreeMap<(u32, usize), String>,
}

impl SemanticDirectory {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `owner` advertised `desc` for `attr`.
    pub fn record(&mut self, attr: AttrId, owner: usize, desc: impl Into<String>) {
        self.descs.insert((attr.0, owner), desc.into());
    }

    /// The description `owner` advertised for `attr`, if any.
    pub fn description(&self, attr: AttrId, owner: usize) -> Option<&str> {
        self.descs.get(&(attr.0, owner)).map(String::as_str)
    }

    /// Iterate all recorded `(attr, owner, description)` entries in
    /// ascending `(attr, owner)` order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, usize, &str)> {
        self.descs.iter().map(|(&(a, o), d)| (AttrId(a), o, d.as_str()))
    }

    /// Exact-filter a DHT candidate set down to owners whose description
    /// really starts with `prefix`.
    pub fn filter_prefix(&self, attr: AttrId, prefix: &str, candidates: &[usize]) -> Vec<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&o| self.description(attr, o).is_some_and(|d| d.starts_with(prefix)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lorm, LormConfig};
    use grid_resource::{ResourceDiscovery, ResourceInfo};

    fn space() -> AttributeSpace {
        AttributeSpace::from_names(["os", "arch"], 1.0, 1000.0).unwrap()
    }

    #[test]
    fn encoding_preserves_order_within_domain() {
        let s = space();
        let c = SemanticCodec::new(&s);
        let names = ["aix", "darwin", "freebsd", "linux", "solaris", "windows"];
        let mut prev = f64::NEG_INFINITY;
        for n in names {
            let v = c.encode(n);
            assert!(v > prev, "order broken at {n}");
            assert!((1.0..=1000.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn prefix_range_covers_matching_descriptions() {
        let c = SemanticCodec::new(&space());
        let (lo, hi) = c.prefix_range("linux");
        for d in ["linux", "linux-5.4", "linux-6.1-rt"] {
            let v = c.encode(d);
            assert!(v >= lo && v <= hi, "{d} must fall in the prefix range");
        }
        for d in ["windows", "lin", "freebsd"] {
            let v = c.encode(d);
            assert!(v < lo || v > hi, "{d} must fall outside");
        }
    }

    #[test]
    fn prefix_queries_resolve_through_lorm() {
        let s = space();
        let os = s.by_name("os").unwrap();
        let codec = SemanticCodec::new(&s);
        let mut table = SemanticDirectory::new();
        let mut grid = Lorm::new(160, &s, LormConfig { dimension: 5, ..LormConfig::default() });

        let machines = [
            (1usize, "linux-5.4"),
            (2, "linux-6.1"),
            (3, "windows-11"),
            (4, "freebsd-14"),
            (5, "linux-4.19"),
        ];
        for (owner, desc) in machines {
            grid.register(ResourceInfo { attr: os, value: codec.encode(desc), owner }).unwrap();
            table.record(os, owner, desc);
        }

        let q = codec.prefix_query(&[(os, "linux")]);
        let out = grid.query_from(0, &q).unwrap();
        let mut got = table.filter_prefix(os, "linux", &out.owners);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 5]);
        // and the walk stayed inside one cluster
        assert!(out.tally.visited <= 5);
    }

    #[test]
    fn dht_candidates_are_a_superset_of_exact_matches() {
        // The 8-byte horizon can only add candidates, never drop them.
        let s = space();
        let os = s.by_name("os").unwrap();
        let codec = SemanticCodec::new(&s);
        let mut grid = Lorm::new(160, &s, LormConfig { dimension: 5, ..LormConfig::default() });
        let descs = ["linuxmachine-a", "linuxmachine-b", "linuxotherkind"];
        for (i, d) in descs.iter().enumerate() {
            grid.register(ResourceInfo { attr: os, value: codec.encode(d), owner: i }).unwrap();
        }
        // all three share 8 bytes ("linuxmac" vs "linuxoth" differ — the
        // first two collide, the third doesn't)
        let q = codec.prefix_query(&[(os, "linuxmachine")]);
        let out = grid.query_from(0, &q).unwrap();
        assert!(out.owners.contains(&0) && out.owners.contains(&1));
    }

    #[test]
    fn directory_iteration_is_stable_across_identical_builds() {
        let build = || {
            let mut t = SemanticDirectory::new();
            for (attr, owner, desc) in
                [(3u32, 9, "linux"), (0, 4, "aix"), (3, 1, "windows"), (1, 7, "darwin")]
            {
                t.record(AttrId(attr), owner, desc);
            }
            t
        };
        let (a, b) = (build(), build());
        let seq_a: Vec<_> = a.iter().map(|(at, o, d)| (at.0, o, d.to_string())).collect();
        let seq_b: Vec<_> = b.iter().map(|(at, o, d)| (at.0, o, d.to_string())).collect();
        assert_eq!(seq_a, seq_b);
        let keys: Vec<_> = seq_a.iter().map(|(a, o, _)| (*a, *o)).collect();
        assert_eq!(keys, vec![(0, 4), (1, 7), (3, 1), (3, 9)]);
    }

    #[test]
    fn directory_filter_is_exact() {
        let mut t = SemanticDirectory::new();
        let a = AttrId(0);
        t.record(a, 1, "linux-5.4");
        t.record(a, 2, "lin");
        t.record(a, 3, "windows");
        assert_eq!(t.filter_prefix(a, "linux", &[1, 2, 3, 99]), vec![1]);
        assert_eq!(t.description(a, 2), Some("lin"));
        assert_eq!(t.description(a, 9), None);
    }
}
