//! Proves the cached routing path is allocation-free in steady state.
//!
//! After one warm pass over the lookup plan, every further pass through
//! `route_stats_cached` — hits *and* collision-evicted misses — must
//! leave the allocation counter untouched: the cache is flat arena
//! storage, the miss path routes with the allocation-free `route_stats`,
//! and walk recording recycles one scratch buffer. Same
//! counting-allocator scheme as `alloc_count.rs`; one test per binary
//! because the counter is process-global.

use chord::{Chord, ChordConfig};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::{route_stats_cached, NodeIdx, RouteCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter bump cannot violate
// any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn cached_route_lookups_make_zero_heap_allocations() {
    const LOOKUPS: usize = 1000;
    let chord = Chord::build(512, ChordConfig::default());
    let d = 7u8;
    let cycloid = Cycloid::build(d as usize * (1 << d), CycloidConfig { dimension: d, seed: 1 });
    let mut rng = SmallRng::seed_from_u64(0xA110C2);
    let chord_plan: Vec<(NodeIdx, u64)> = (0..LOOKUPS)
        .map(|_| (chord.random_node(&mut rng).expect("live node"), rng.gen()))
        .collect();
    let cycloid_plan: Vec<(NodeIdx, CycloidId)> = (0..LOOKUPS)
        .map(|_| {
            let from = cycloid.random_node(&mut rng).expect("live node");
            let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
            (from, key)
        })
        .collect();

    // Warm pass: populates the cache slots (RouteCache::new itself
    // allocates its flat tables; that lands outside the window too).
    let mut chord_cache = RouteCache::new();
    let mut cycloid_cache = RouteCache::new();
    for &(from, key) in &chord_plan {
        black_box(route_stats_cached(&chord, from, key, 0, &mut chord_cache).expect("lookup").hops);
    }
    for &(from, key) in &cycloid_plan {
        black_box(
            route_stats_cached(&cycloid, from, key, 0, &mut cycloid_cache).expect("lookup").hops,
        );
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for &(from, key) in &chord_plan {
        black_box(route_stats_cached(&chord, from, key, 0, &mut chord_cache).expect("lookup").hops);
    }
    for &(from, key) in &cycloid_plan {
        black_box(
            route_stats_cached(&cycloid, from, key, 0, &mut cycloid_cache).expect("lookup").hops,
        );
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs,
        0,
        "cached routing must be allocation-free after the warm pass: \
         {allocs} allocations over {} lookups",
        2 * LOOKUPS
    );
    assert!(chord_cache.hits() > 0, "warm chord plan must serve hits");
    assert!(cycloid_cache.hits() > 0, "warm cycloid plan must serve hits");
}
