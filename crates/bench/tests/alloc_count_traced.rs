//! Pins traced routing at exactly one allocation per lookup.
//!
//! `route` returns the hop-by-hop trace in a `Vec`, so one allocation is
//! the floor — and the pre-sized trace buffers (worst-case path bound
//! capacity on both overlays) make it the ceiling too: any regrowth
//! would show up as a second allocation. Same counting-allocator scheme
//! as `alloc_count.rs`; one test per binary because the counter is
//! process-global.

use chord::{Chord, ChordConfig};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::{NodeIdx, Overlay};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter bump cannot violate
// any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn traced_routes_make_exactly_one_allocation_each() {
    const LOOKUPS: usize = 1000;
    let chord = Chord::build(512, ChordConfig::default());
    let d = 7u8;
    let cycloid = Cycloid::build(d as usize * (1 << d), CycloidConfig { dimension: d, seed: 1 });
    let mut rng = SmallRng::seed_from_u64(0xA110C1);
    let chord_plan: Vec<(NodeIdx, u64)> = (0..LOOKUPS)
        .map(|_| (chord.random_node(&mut rng).expect("live node"), rng.gen()))
        .collect();
    let cycloid_plan: Vec<(NodeIdx, CycloidId)> = (0..LOOKUPS)
        .map(|_| {
            let from = cycloid.random_node(&mut rng).expect("live node");
            let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
            (from, key)
        })
        .collect();

    // Warm-up: any lazily-initialized one-time allocation lands here.
    black_box(chord.route(chord_plan[0].0, chord_plan[0].1).expect("lookup").hops());
    black_box(cycloid.route(cycloid_plan[0].0, cycloid_plan[0].1).expect("lookup").hops());

    let before = ALLOCS.load(Ordering::Relaxed);
    for &(from, key) in &chord_plan {
        black_box(chord.route(from, key).expect("lookup").hops());
    }
    let chord_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        chord_allocs, LOOKUPS as u64,
        "chord traced routes must allocate exactly once per lookup (the trace Vec): \
         {chord_allocs} allocations over {LOOKUPS} lookups"
    );

    let before = ALLOCS.load(Ordering::Relaxed);
    for &(from, key) in &cycloid_plan {
        black_box(cycloid.route(from, key).expect("lookup").hops());
    }
    let cycloid_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        cycloid_allocs, LOOKUPS as u64,
        "cycloid traced routes must allocate exactly once per lookup (the trace Vec): \
         {cycloid_allocs} allocations over {LOOKUPS} lookups"
    );
}
