//! Proves the untraced routing fast path is allocation-free.
//!
//! A counting `#[global_allocator]` (the same scheme the `repro` binary
//! uses for `repro perf`) wraps the system allocator; the single test
//! routes a thousand lookups through `route_stats` on stabilized Chord
//! and Cycloid networks and asserts the allocation counter did not move.
//! One test per binary: the counter is process-global, so a second
//! concurrent test would pollute the window.

use chord::{Chord, ChordConfig};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::{NodeIdx, Overlay};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter bump cannot violate
// any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn route_stats_makes_zero_heap_allocations() {
    const LOOKUPS: usize = 1000;
    // Everything that allocates happens before the measured window:
    // network construction and the pre-drawn lookup plans.
    let chord = Chord::build(512, ChordConfig::default());
    let d = 7u8;
    let cycloid = Cycloid::build(d as usize * (1 << d), CycloidConfig { dimension: d, seed: 1 });
    let mut rng = SmallRng::seed_from_u64(0xA110C);
    let chord_plan: Vec<(NodeIdx, u64)> = (0..LOOKUPS)
        .map(|_| (chord.random_node(&mut rng).expect("live node"), rng.gen()))
        .collect();
    let cycloid_plan: Vec<(NodeIdx, CycloidId)> = (0..LOOKUPS)
        .map(|_| {
            let from = cycloid.random_node(&mut rng).expect("live node");
            let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
            (from, key)
        })
        .collect();

    // Warm-up: any lazily-initialized one-time allocation lands here.
    black_box(chord.route_stats(chord_plan[0].0, chord_plan[0].1).expect("lookup").hops);
    black_box(cycloid.route_stats(cycloid_plan[0].0, cycloid_plan[0].1).expect("lookup").hops);

    let before = ALLOCS.load(Ordering::Relaxed);
    for &(from, key) in &chord_plan {
        black_box(chord.route_stats(from, key).expect("lookup").hops);
    }
    for &(from, key) in &cycloid_plan {
        black_box(cycloid.route_stats(from, key).expect("lookup").hops);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs,
        0,
        "route_stats must be allocation-free: {allocs} allocations over {} lookups",
        2 * LOOKUPS
    );
}
