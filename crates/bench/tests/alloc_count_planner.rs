//! Proves the planner's sorted-merge intersection is allocation-free.
//!
//! A counting `#[global_allocator]` (the same scheme the `repro` binary
//! uses for `repro perf`) wraps the system allocator; the single test
//! drives a thousand `intersect_sorted` calls — balanced merges and the
//! galloping size-mismatch path in both directions — through a
//! pre-sized accumulator and asserts the allocation counter did not
//! move. One test per binary: the counter is process-global, so a
//! second concurrent test would pollute the window.

use grid_resource::intersect_sorted;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter bump cannot violate
// any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn sorted_set(rng: &mut SmallRng, len: usize, max: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..len).map(|_| rng.gen_range(0..max)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn intersect_sorted_makes_zero_heap_allocations() {
    const ROUNDS: usize = 1000;
    // Everything that allocates happens before the measured window: the
    // candidate sets and the accumulator, sized for the largest refill.
    let mut rng = SmallRng::seed_from_u64(0xA110C2);
    // balanced merge, gallop over `other`, gallop over the accumulator
    let pairs: [(Vec<usize>, Vec<usize>); 3] = [
        (sorted_set(&mut rng, 2048, 1 << 14), sorted_set(&mut rng, 2048, 1 << 14)),
        (sorted_set(&mut rng, 4096, 1 << 16), sorted_set(&mut rng, 64, 1 << 16)),
        (sorted_set(&mut rng, 64, 1 << 16), sorted_set(&mut rng, 4096, 1 << 16)),
    ];
    let cap = pairs.iter().map(|(a, _)| a.len()).max().expect("nonempty");
    let mut acc: Vec<usize> = Vec::with_capacity(cap);

    // Warm-up: any lazily-initialized one-time allocation lands here.
    acc.extend_from_slice(&pairs[0].0);
    intersect_sorted(&mut acc, &pairs[0].1);
    black_box(acc.len());

    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 0..ROUNDS {
        let (a, b) = &pairs[round % pairs.len()];
        acc.clear();
        acc.extend_from_slice(a);
        intersect_sorted(&mut acc, b);
        black_box(acc.len());
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "intersect_sorted must be allocation-free: {allocs} allocations over {ROUNDS} rounds"
    );
}
