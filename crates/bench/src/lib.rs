//! # bench — the figure-regeneration harness
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation section and prints them as markdown tables (the same rows /
//! series the paper plots). The Criterion benches under `benches/`
//! measure the cost of the underlying kernels (routing, placement, query
//! batches, churn) per system.
//!
//! ```text
//! repro [--quick] [fig3a fig3 fig4 fig5 fig6a fig6b t410 ablations | all]
//! ```
//!
//! `--quick` scales the experiment down (fewer nodes/attributes/queries)
//! for smoke runs; the default is the paper's full §V configuration
//! (n = 2048, m = 200, k = 500, d = 8).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sim::experiments::{ablation, fig3, fig4, fig5, fig6, worstcase};
use sim::{SimConfig, TestBed};

/// Which artifacts to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Figure 3(a): outlinks vs network size.
    Fig3a,
    /// Figures 3(b–d): directory-size distributions.
    Fig3Dirs,
    /// Figures 4(a,b): non-range query hops.
    Fig4,
    /// Figures 5(a,b): range-query visited nodes.
    Fig5,
    /// Figure 6(a): hops under churn.
    Fig6a,
    /// Figure 6(b): visited nodes under churn.
    Fig6b,
    /// Theorem 4.10 worst case.
    T410,
    /// Routed registration cost (information-maintenance overhead).
    Maintenance,
    /// Query-processing load balance (Theorem 4.6's bottleneck claim).
    LoadBalance,
    /// Directory-size distributions swept over network sizes.
    Fig3Sweep,
    /// Churn with *abrupt* failures instead of graceful departures
    /// (extension beyond the paper's §V.C).
    ChurnFail,
    /// Hop-count distributions behind Figure 4's averages (extension).
    HopDist,
    /// Wall-clock latency replay through a per-hop delay model (extension).
    Latency,
    /// The ten theorems' closed forms at the configured parameters.
    Theorems,
    /// The ablation studies.
    Ablations,
}

impl Artifact {
    /// Every artifact, in presentation order.
    pub const ALL: [Artifact; 15] = [
        Artifact::Theorems,
        Artifact::Fig3a,
        Artifact::Fig3Dirs,
        Artifact::Fig3Sweep,
        Artifact::Fig4,
        Artifact::Fig5,
        Artifact::Fig6a,
        Artifact::Fig6b,
        Artifact::ChurnFail,
        Artifact::HopDist,
        Artifact::Latency,
        Artifact::T410,
        Artifact::Maintenance,
        Artifact::LoadBalance,
        Artifact::Ablations,
    ];

    /// Parse a command-line target name.
    pub fn parse(s: &str) -> Option<Vec<Artifact>> {
        Some(match s {
            "fig3a" => vec![Artifact::Fig3a],
            "fig3" => vec![Artifact::Fig3a, Artifact::Fig3Dirs],
            "fig3bcd" | "fig3dirs" => vec![Artifact::Fig3Dirs],
            "fig4" => vec![Artifact::Fig4],
            "fig5" => vec![Artifact::Fig5],
            "fig6" => vec![Artifact::Fig6a, Artifact::Fig6b],
            "fig6a" => vec![Artifact::Fig6a],
            "fig6b" => vec![Artifact::Fig6b],
            "t410" => vec![Artifact::T410],
            "maintenance" => vec![Artifact::Maintenance],
            "churnfail" => vec![Artifact::ChurnFail],
            "hopdist" => vec![Artifact::HopDist],
            "latency" => vec![Artifact::Latency],
            "theorems" => vec![Artifact::Theorems],
            "loadbalance" => vec![Artifact::LoadBalance],
            "fig3sweep" => vec![Artifact::Fig3Sweep],
            "ablations" => vec![Artifact::Ablations],
            "all" => Artifact::ALL.to_vec(),
            _ => return None,
        })
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReproConfig {
    /// Scale the experiments down for a smoke run.
    pub quick: bool,
    /// Root seed.
    pub seed: u64,
}

impl Default for ReproConfig {
    fn default() -> Self {
        Self { quick: false, seed: 0x1C99 }
    }
}

impl ReproConfig {
    fn sim(&self) -> SimConfig {
        let base = if self.quick { SimConfig::quick() } else { SimConfig::default() };
        SimConfig { seed: self.seed, ..base }
    }

    fn fig3a_dims(&self) -> Vec<u8> {
        if self.quick {
            vec![5, 6, 7]
        } else {
            vec![5, 6, 7, 8, 9, 10, 11]
        }
    }

    fn queries(&self) -> usize {
        if self.quick {
            100
        } else {
            1000
        }
    }

    fn churn_setup(&self) -> fig6::ChurnSetup {
        if self.quick {
            fig6::ChurnSetup::quick()
        } else {
            fig6::ChurnSetup::default()
        }
    }
}

/// Run one artifact and render its report.
pub fn run_artifact(a: Artifact, cfg: &ReproConfig) -> String {
    let sim_cfg = cfg.sim();
    match a {
        Artifact::Fig3a => fig3::fig3a(&cfg.fig3a_dims(), sim_cfg.attrs, cfg.seed).to_string(),
        Artifact::Fig3Dirs => {
            let bed = TestBed::new(sim_cfg);
            fig3::fig3_directories(&bed).to_string()
        }
        Artifact::Fig4 => {
            let bed = TestBed::new(sim_cfg);
            // paper: 100 nodes × 10 queries each
            let (origins, per) = if cfg.quick { (20, 5) } else { (100, 10) };
            fig4::fig4(&bed, 1..=10, origins, per).to_string()
        }
        Artifact::Fig5 => {
            let bed = TestBed::new(sim_cfg);
            fig5::fig5(&bed, 1..=10, cfg.queries()).to_string()
        }
        Artifact::Fig6a => {
            fig6::fig6(&sim_cfg, &cfg.churn_setup(), sim::experiments::Metric::Hops).to_string()
        }
        Artifact::Fig6b => {
            fig6::fig6(&sim_cfg, &cfg.churn_setup(), sim::experiments::Metric::Visited)
                .to_string()
        }
        Artifact::T410 => {
            let bed = TestBed::new(sim_cfg);
            let queries = if cfg.quick { 5 } else { 20 };
            worstcase::worstcase(&bed, 1, queries).to_string()
        }
        Artifact::ChurnFail => {
            // range queries return many matches, so lost directory entries
            // are actually observable as stale answers
            let setup = fig6::ChurnSetup { graceful: false, ..cfg.churn_setup() };
            let mut out =
                fig6::fig6(&sim_cfg, &setup, sim::experiments::Metric::Visited).to_string();
            out.push_str(
                "(extension: departures are abrupt failures; stale links and lost \
                 directory entries persist until the next maintenance round)\n",
            );
            out
        }
        Artifact::HopDist => {
            let bed = TestBed::new(sim_cfg);
            let queries = if cfg.quick { 400 } else { 3000 };
            sim::experiments::hopdist::hop_distribution(&bed, queries).to_string()
        }
        Artifact::Theorems => {
            theorem_table(&sim_cfg.params())
        }
        Artifact::Latency => {
            let bed = TestBed::new(sim_cfg);
            let queries = if cfg.quick { 60 } else { 300 };
            sim::experiments::latency::latency(
                &bed,
                queries,
                3,
                dht_core::LatencyModel::wan(),
            )
            .to_string()
        }
        Artifact::Maintenance => {
            sim::experiments::maintenance::registration_cost(&sim_cfg).to_string()
        }
        Artifact::LoadBalance => {
            let bed = TestBed::new(sim_cfg);
            let queries = cfg.queries();
            sim::experiments::maintenance::query_load_balance(&bed, queries, 3).to_string()
        }
        Artifact::Fig3Sweep => {
            let dims: &[u8] = if cfg.quick { &[5, 6] } else { &[6, 7, 8, 9] };
            let rows = fig3::fig3_directory_sweep(dims, &sim_cfg);
            fig3::render_sweep(&rows, &sim_cfg)
        }
        Artifact::Ablations => {
            let queries = cfg.queries();
            let mut out = String::new();
            out.push_str(&ablation::ablate_placement(&sim_cfg, queries).to_string());
            out.push('\n');
            out.push_str(&ablation::ablate_value_skew(&sim_cfg).to_string());
            out.push('\n');
            let (n, lk) = if cfg.quick { (300, 300) } else { (2048, 2000) };
            out.push_str(&ablation::ablate_succ_list(n, 0.15, lk, cfg.seed).to_string());
            out.push('\n');
            let pop_queries = if cfg.quick { 150 } else { 600 };
            out.push_str(&ablation::ablate_attr_popularity(&sim_cfg, pop_queries).to_string());
            out.push('\n');
            out.push_str(&ablation::ablate_query_plan(&sim_cfg, queries, 4).to_string());
            out.push('\n');
            out.push_str(&ablation::ablate_flat_lorm(&sim_cfg, queries).to_string());
            out.push('\n');
            let dims: &[u8] = if cfg.quick { &[5, 6, 7] } else { &[5, 6, 7, 8, 9, 10] };
            out.push_str(&ablation::ablate_dimension(dims, lk, cfg.seed).to_string());
            out
        }
    }
}

/// Render the ten theorems' closed forms at the given parameters — the
/// paper's §IV as one table.
pub fn theorem_table(p: &analysis::Params) -> String {
    use analysis as th;
    use analysis::System;
    use sim::Table;
    let mut t = Table::new(
        format!(
            "Theorems 4.1-4.10 at n = {}, m = {}, k = {}, d = {} (log2 n = {:.0})",
            p.n, p.m, p.k, p.d, p.log2_n()
        ),
        &["theorem", "claim", "value"],
    );
    let mut row = |a: &str, b: &str, v: f64| {
        t.row(vec![a.to_string(), b.to_string(), Table::fmt_f(v)]);
    };
    row("4.1", "LORM structure overhead >= m x below multi-DHT", th::t41_structure_factor(p));
    row("4.2", "MAAN total information multiplier", th::t42_maan_total_factor());
    row("4.3", "MAAN/LORM directory percentiles: d(1 + m/n)", th::t43_maan_over_lorm(p));
    row("4.4", "SWORD/LORM directory percentiles: d", th::t44_sword_over_lorm(p));
    row("4.5", "Mercury/LORM balance: n/(d m)", th::t45_mercury_balance_factor(p));
    row("4.7", "MAAN/LORM non-range hops: log2(n)/d", th::t47_maan_over_lorm_hops(p));
    row("4.8", "MAAN/(Mercury,SWORD) non-range hops", th::t48_maan_over_single_lookup());
    for s in System::ALL {
        row("4.9", &format!("avg range visited/attr, {}", s.name()), th::range_visited(p, 1, s));
    }
    for s in System::ALL {
        row(
            "4.10",
            &format!("worst-case contacted/attr, {}", s.name()),
            th::worstcase_range_contacted(p, 1, s),
        );
    }
    row("4.10", "guaranteed LORM saving (>= n per attr)", th::t410_min_saving(p, 1));
    let mut out = t.to_string();
    out.push_str("(4.6 is the qualitative balance ordering implied by 4.3-4.5)
");
    out
}

/// Parse CLI arguments into a run plan. Returns `Err` with a usage string
/// on bad input.
pub fn parse_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<(ReproConfig, Vec<Artifact>), String> {
    let mut cfg = ReproConfig::default();
    let mut artifacts: Vec<Artifact> = Vec::new();
    for a in args {
        match a.as_str() {
            "--quick" | "-q" => cfg.quick = true,
            s if s.starts_with("--seed=") => {
                cfg.seed = s["--seed=".len()..]
                    .parse()
                    .map_err(|_| format!("bad seed in {s:?}"))?;
            }
            s => match Artifact::parse(s) {
                Some(mut v) => artifacts.append(&mut v),
                None => {
                    return Err(format!(
                        "unknown target {s:?}\nusage: repro [--quick] [--seed=N] \
                         [fig3a fig3 fig3sweep fig4 fig5 fig6a fig6b t410 \
                          maintenance loadbalance ablations | all]"
                    ))
                }
            },
        }
    }
    if artifacts.is_empty() {
        artifacts = Artifact::ALL.to_vec();
    }
    artifacts.dedup();
    Ok((cfg, artifacts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_to_all() {
        let (cfg, arts) = parse_args(Vec::<String>::new()).unwrap();
        assert!(!cfg.quick);
        assert_eq!(arts.len(), Artifact::ALL.len());
    }

    #[test]
    fn parse_quick_and_targets() {
        let (cfg, arts) =
            parse_args(["--quick".into(), "fig4".into(), "t410".into()]).unwrap();
        assert!(cfg.quick);
        assert_eq!(arts, vec![Artifact::Fig4, Artifact::T410]);
    }

    #[test]
    fn parse_seed() {
        let (cfg, _) = parse_args(["--seed=42".into()]).unwrap();
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse_args(["fig9".into()]).is_err());
        assert!(parse_args(["--seed=x".into()]).is_err());
    }

    #[test]
    fn fig3_group_expands() {
        let (_, arts) = parse_args(["fig3".into()]).unwrap();
        assert_eq!(arts, vec![Artifact::Fig3a, Artifact::Fig3Dirs]);
    }

    #[test]
    fn quick_fig3a_renders_table() {
        let cfg = ReproConfig { quick: true, seed: 7 };
        // trim the sweep further for the unit test
        let out = fig3::fig3a(&[5], 8, 7).to_string();
        assert!(out.contains("Figure 3(a)"));
        assert!(out.contains("Mercury"));
        let _ = cfg;
    }

    #[test]
    fn quick_t410_renders_table() {
        let cfg = ReproConfig { quick: true, seed: 7 };
        let out = run_artifact(Artifact::T410, &cfg);
        assert!(out.contains("Theorem 4.10"), "got: {out}");
        assert!(out.contains("LORM"));
    }

    #[test]
    fn every_artifact_runs_end_to_end_in_quick_mode() {
        // The full-scale run is recorded in EXPERIMENTS.md; this guards
        // that every artifact stays runnable. Quick mode, tiny batches.
        let cfg = ReproConfig { quick: true, seed: 3 };
        for a in Artifact::ALL {
            let out = run_artifact(a, &cfg);
            assert!(out.contains('|'), "{a:?} produced no table:\n{out}");
            assert!(out.contains("##"), "{a:?} produced no title");
        }
    }

    #[test]
    fn theorem_table_shows_papers_headline_numbers() {
        let out = theorem_table(&analysis::Params::paper());
        // §V.A quotes 8.78 (T4.3) and 1.28 (T4.5); §V.B quotes 513/514/3/1.
        assert!(out.contains("8.78"), "{out}");
        assert!(out.contains("1.28"));
        assert!(out.contains("513.0"));
        assert!(out.contains("514.0"));
        assert!(out.contains("Theorems 4.1-4.10 at n = 2048"));
    }

    #[test]
    fn fig6_group_expands_to_both_metrics() {
        let (_, arts) = parse_args(["fig6".into()]).unwrap();
        assert_eq!(arts, vec![Artifact::Fig6a, Artifact::Fig6b]);
        let (_, all) = parse_args(["all".into()]).unwrap();
        assert_eq!(all.len(), Artifact::ALL.len());
    }
}
