//! # bench — the figure-regeneration harness
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation section and prints them as markdown tables (the same rows /
//! series the paper plots). The Criterion benches under `benches/`
//! measure the cost of the underlying kernels (routing, placement, query
//! batches, churn) per system.
//!
//! ```text
//! repro [--quick] [fig3a fig3 fig4 fig5 fig6a fig6b t410 ablations | all]
//! repro [--quick] perf    # wall-clock kernel baseline (perf-v1 schema)
//! repro [--quick] chaos   # fault-injection sweep (chaos-v1 schema)
//! repro [--quick] scale   # 1k -> 1M scaling sweep (perf-v2 schema)
//! ```
//!
//! `--quick` scales the experiment down (fewer nodes/attributes/queries)
//! for smoke runs; the default is the paper's full §V configuration
//! (n = 2048, m = 200, k = 500, d = 8).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod durability;
pub mod perf;
pub mod scale;

use grid_resource::QueryPlan;
use sim::experiments::{ablation, fig3, fig4, fig5, fig6, worstcase, Engine};
use sim::{BedCache, Report, SimConfig};
use std::path::PathBuf;

/// Which artifacts to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Figure 3(a): outlinks vs network size.
    Fig3a,
    /// Figures 3(b–d): directory-size distributions.
    Fig3Dirs,
    /// Figures 4(a,b): non-range query hops.
    Fig4,
    /// Figures 5(a,b): range-query visited nodes.
    Fig5,
    /// Figure 6(a): hops under churn.
    Fig6a,
    /// Figure 6(b): visited nodes under churn.
    Fig6b,
    /// Theorem 4.10 worst case.
    T410,
    /// Routed registration cost (information-maintenance overhead).
    Maintenance,
    /// Query-processing load balance (Theorem 4.6's bottleneck claim).
    LoadBalance,
    /// Directory-size distributions swept over network sizes.
    Fig3Sweep,
    /// Churn with *abrupt* failures instead of graceful departures
    /// (extension beyond the paper's §V.C).
    ChurnFail,
    /// Hop-count distributions behind Figure 4's averages (extension).
    HopDist,
    /// Wall-clock latency replay through a per-hop delay model (extension).
    Latency,
    /// The ten theorems' closed forms at the configured parameters.
    Theorems,
    /// The ablation studies.
    Ablations,
}

impl Artifact {
    /// Every artifact, in presentation order.
    pub const ALL: [Artifact; 15] = [
        Artifact::Theorems,
        Artifact::Fig3a,
        Artifact::Fig3Dirs,
        Artifact::Fig3Sweep,
        Artifact::Fig4,
        Artifact::Fig5,
        Artifact::Fig6a,
        Artifact::Fig6b,
        Artifact::ChurnFail,
        Artifact::HopDist,
        Artifact::Latency,
        Artifact::T410,
        Artifact::Maintenance,
        Artifact::LoadBalance,
        Artifact::Ablations,
    ];

    /// Stable machine-readable name, used as the CLI target and as the
    /// `name` field of the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::Theorems => "theorems",
            Artifact::Fig3a => "fig3a",
            Artifact::Fig3Dirs => "fig3dirs",
            Artifact::Fig3Sweep => "fig3sweep",
            Artifact::Fig4 => "fig4",
            Artifact::Fig5 => "fig5",
            Artifact::Fig6a => "fig6a",
            Artifact::Fig6b => "fig6b",
            Artifact::ChurnFail => "churnfail",
            Artifact::HopDist => "hopdist",
            Artifact::Latency => "latency",
            Artifact::T410 => "t410",
            Artifact::Maintenance => "maintenance",
            Artifact::LoadBalance => "loadbalance",
            Artifact::Ablations => "ablations",
        }
    }

    /// Parse a command-line target name.
    pub fn parse(s: &str) -> Option<Vec<Artifact>> {
        Some(match s {
            "fig3a" => vec![Artifact::Fig3a],
            "fig3" => vec![Artifact::Fig3a, Artifact::Fig3Dirs],
            "fig3bcd" | "fig3dirs" => vec![Artifact::Fig3Dirs],
            "fig4" => vec![Artifact::Fig4],
            "fig5" => vec![Artifact::Fig5],
            "fig6" => vec![Artifact::Fig6a, Artifact::Fig6b],
            "fig6a" => vec![Artifact::Fig6a],
            "fig6b" => vec![Artifact::Fig6b],
            "t410" => vec![Artifact::T410],
            "maintenance" => vec![Artifact::Maintenance],
            "churnfail" => vec![Artifact::ChurnFail],
            "hopdist" => vec![Artifact::HopDist],
            "latency" => vec![Artifact::Latency],
            "theorems" => vec![Artifact::Theorems],
            "loadbalance" => vec![Artifact::LoadBalance],
            "fig3sweep" => vec![Artifact::Fig3Sweep],
            "ablations" => vec![Artifact::Ablations],
            "all" => Artifact::ALL.to_vec(),
            _ => return None,
        })
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Scale the experiments down for a smoke run.
    pub quick: bool,
    /// Root seed.
    pub seed: u64,
    /// Worker threads per query batch (0 = auto-detect).
    pub shards: usize,
    /// Write the machine-readable metrics export here.
    pub json: Option<PathBuf>,
    /// Run the wall-clock perf kernels instead of the figures.
    pub perf: bool,
    /// Run the fault-injection chaos sweep instead of the figures.
    pub chaos: bool,
    /// Run the 1k → 1M scaling sweep instead of the figures.
    pub scale: bool,
    /// Run the replication/durability churn sweep instead of the figures.
    pub durability: bool,
    /// Perf and scale modes: diff the run against this committed BENCH
    /// file and exit non-zero on a per-kernel wall-clock regression.
    pub baseline: Option<PathBuf>,
    /// Run the figure pipelines through the route-cached batch executor
    /// (the default — reports are bit-identical to the plain engine;
    /// `--no-cache` flips this to re-verify that equivalence end to end).
    pub cached: bool,
    /// Multi-attribute query plan for the query-driven figures (fig4,
    /// fig5): parallel (the paper's §III semantics, the default),
    /// sequential, or adaptive selective-first.
    pub plan: QueryPlan,
}

impl Default for ReproConfig {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 0x1C99,
            shards: 0,
            json: None,
            perf: false,
            chaos: false,
            scale: false,
            durability: false,
            baseline: None,
            cached: true,
            plan: QueryPlan::Parallel,
        }
    }
}

impl ReproConfig {
    fn sim(&self) -> SimConfig {
        let base = if self.quick { SimConfig::quick() } else { SimConfig::default() };
        SimConfig { seed: self.seed, ..base }
    }

    fn fig3a_dims(&self) -> Vec<u8> {
        if self.quick {
            vec![5, 6, 7]
        } else {
            vec![5, 6, 7, 8, 9, 10, 11]
        }
    }

    fn queries(&self) -> usize {
        if self.quick {
            100
        } else {
            1000
        }
    }

    fn churn_setup(&self) -> fig6::ChurnSetup {
        if self.quick {
            fig6::ChurnSetup::quick()
        } else {
            fig6::ChurnSetup::default()
        }
    }

    fn engine(&self) -> Engine {
        if self.cached {
            Engine::Cached
        } else {
            Engine::Plain
        }
    }
}

/// Run one artifact and build its structured report, with a transient
/// bed cache (single-artifact callers). Batch callers — the `repro` main
/// loop, the perf pipelines — use [`run_artifact_report_cached`] so one
/// stabilized bed serves every artifact with the same configuration.
pub fn run_artifact_report(a: Artifact, cfg: &ReproConfig) -> Report {
    run_artifact_report_cached(a, cfg, &BedCache::new())
}

/// Run one artifact against a caller-owned [`BedCache`]: every artifact
/// that mounts the standard test bed shares one `Arc` build per distinct
/// configuration, and the churn sweeps clone cached prototypes instead of
/// rebuilding per (rate, system) cell.
pub fn run_artifact_report_cached(a: Artifact, cfg: &ReproConfig, cache: &BedCache) -> Report {
    let sim_cfg = cfg.sim();
    match a {
        Artifact::Fig3a => fig3::fig3a(&cfg.fig3a_dims(), sim_cfg.attrs, cfg.seed).report(),
        Artifact::Fig3Dirs => {
            let bed = cache.bed(sim_cfg);
            fig3::fig3_directories(&bed).report()
        }
        Artifact::Fig4 => {
            let bed = cache.bed(sim_cfg);
            // paper: 100 nodes × 10 queries each
            let (origins, per) = if cfg.quick { (20, 5) } else { (100, 10) };
            fig4::fig4_planned(&bed, 1..=10, origins, per, cfg.engine(), cfg.plan).report()
        }
        Artifact::Fig5 => {
            let bed = cache.bed(sim_cfg);
            fig5::fig5_planned(&bed, 1..=10, cfg.queries(), cfg.engine(), cfg.plan).report()
        }
        Artifact::Fig6a => fig6::fig6_with_engine(
            &sim_cfg,
            &cfg.churn_setup(),
            sim::experiments::Metric::Hops,
            cache,
            cfg.engine(),
        )
        .report(),
        Artifact::Fig6b => fig6::fig6_with_engine(
            &sim_cfg,
            &cfg.churn_setup(),
            sim::experiments::Metric::Visited,
            cache,
            cfg.engine(),
        )
        .report(),
        Artifact::T410 => {
            let bed = cache.bed(sim_cfg);
            let queries = if cfg.quick { 5 } else { 20 };
            worstcase::worstcase(&bed, 1, queries).report()
        }
        Artifact::ChurnFail => {
            // range queries return many matches, so lost directory entries
            // are actually observable as stale answers
            let setup = fig6::ChurnSetup { graceful: false, ..cfg.churn_setup() };
            let mut rep = fig6::fig6_with_engine(
                &sim_cfg,
                &setup,
                sim::experiments::Metric::Visited,
                cache,
                cfg.engine(),
            )
            .report();
            rep.note(
                "(extension: departures are abrupt failures; stale links and lost \
                 directory entries persist until the next maintenance round)",
            );
            rep
        }
        Artifact::HopDist => {
            let bed = cache.bed(sim_cfg);
            let queries = if cfg.quick { 400 } else { 3000 };
            sim::experiments::hopdist::hop_distribution(&bed, queries).report()
        }
        Artifact::Theorems => theorem_report(&sim_cfg.params()),
        Artifact::Latency => {
            let bed = cache.bed(sim_cfg);
            let queries = if cfg.quick { 60 } else { 300 };
            sim::experiments::latency::latency(&bed, queries, 3, dht_core::LatencyModel::wan())
                .report()
        }
        Artifact::Maintenance => {
            sim::experiments::maintenance::registration_cost(&sim_cfg).report()
        }
        Artifact::LoadBalance => {
            let bed = cache.bed(sim_cfg);
            let queries = cfg.queries();
            sim::experiments::maintenance::query_load_balance(&bed, queries, 3).report()
        }
        Artifact::Fig3Sweep => {
            let dims: &[u8] = if cfg.quick { &[5, 6] } else { &[6, 7, 8, 9] };
            let rows = fig3::fig3_directory_sweep(dims, &sim_cfg);
            fig3::sweep_report(&rows, &sim_cfg)
        }
        Artifact::Ablations => {
            let queries = cfg.queries();
            let mut rep = Report::new();
            rep.append(ablation::ablate_placement(&sim_cfg, queries).report());
            rep.append(ablation::ablate_value_skew(&sim_cfg).report());
            let (n, lk) = if cfg.quick { (300, 300) } else { (2048, 2000) };
            rep.append(ablation::ablate_succ_list(n, 0.15, lk, cfg.seed).report());
            let pop_queries = if cfg.quick { 150 } else { 600 };
            rep.append(ablation::ablate_attr_popularity(&sim_cfg, pop_queries).report());
            rep.append(ablation::ablate_query_plan(&sim_cfg, queries, 4).report());
            rep.append(ablation::ablate_flat_lorm(&sim_cfg, queries).report());
            let dims: &[u8] = if cfg.quick { &[5, 6, 7] } else { &[5, 6, 7, 8, 9, 10] };
            rep.append(ablation::ablate_dimension(dims, lk, cfg.seed).report());
            rep
        }
    }
}

/// Run one artifact and render its report as text.
pub fn run_artifact(a: Artifact, cfg: &ReproConfig) -> String {
    run_artifact_report(a, cfg).to_string()
}

/// The ten theorems' closed forms at the given parameters — the paper's
/// §IV as one structured report.
pub fn theorem_report(p: &analysis::Params) -> Report {
    use analysis as th;
    use analysis::System;
    use sim::Table;
    let mut t = Table::new(
        format!(
            "Theorems 4.1-4.10 at n = {}, m = {}, k = {}, d = {} (log2 n = {:.0})",
            p.n,
            p.m,
            p.k,
            p.d,
            p.log2_n()
        ),
        &["theorem", "claim", "value"],
    );
    let mut row = |a: &str, b: &str, v: f64| {
        t.row(vec![a.to_string(), b.to_string(), Table::fmt_f(v)]);
    };
    row("4.1", "LORM structure overhead >= m x below multi-DHT", th::t41_structure_factor(p));
    row("4.2", "MAAN total information multiplier", th::t42_maan_total_factor());
    row("4.3", "MAAN/LORM directory percentiles: d(1 + m/n)", th::t43_maan_over_lorm(p));
    row("4.4", "SWORD/LORM directory percentiles: d", th::t44_sword_over_lorm(p));
    row("4.5", "Mercury/LORM balance: n/(d m)", th::t45_mercury_balance_factor(p));
    row("4.7", "MAAN/LORM non-range hops: log2(n)/d", th::t47_maan_over_lorm_hops(p));
    row("4.8", "MAAN/(Mercury,SWORD) non-range hops", th::t48_maan_over_single_lookup());
    for s in System::ALL {
        row("4.9", &format!("avg range visited/attr, {}", s.name()), th::range_visited(p, 1, s));
    }
    for s in System::ALL {
        row(
            "4.10",
            &format!("worst-case contacted/attr, {}", s.name()),
            th::worstcase_range_contacted(p, 1, s),
        );
    }
    row("4.10", "guaranteed LORM saving (>= n per attr)", th::t410_min_saving(p, 1));
    let mut rep = Report::new();
    rep.table(t);
    rep.note("(4.6 is the qualitative balance ordering implied by 4.3-4.5)");
    rep
}

/// Render the theorem report as text.
pub fn theorem_table(p: &analysis::Params) -> String {
    theorem_report(p).to_string()
}

/// Parse CLI arguments into a run plan. Returns `Err` with a usage string
/// on bad input.
pub fn parse_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<(ReproConfig, Vec<Artifact>), String> {
    const USAGE: &str = "usage: repro [--quick] [--seed=N] [--shards=N] \
                         [--json <path>] [--baseline <BENCH.json>] [--no-cache] \
                         [--plan=parallel|sequential|adaptive] \
                         [perf | chaos | scale | durability | theorems fig3a \
                          fig3bcd fig3sweep fig4 fig5 fig6a fig6b t410 \
                          maintenance churnfail hopdist latency loadbalance \
                          ablations | all]";
    let mut cfg = ReproConfig::default();
    let mut artifacts: Vec<Artifact> = Vec::new();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" | "-q" => cfg.quick = true,
            "--json" => {
                let path = args.next().ok_or(format!("--json needs a path\n{USAGE}"))?;
                cfg.json = Some(PathBuf::from(path));
            }
            s if s.starts_with("--json=") => {
                cfg.json = Some(PathBuf::from(&s["--json=".len()..]));
            }
            "--baseline" => {
                let path = args.next().ok_or(format!("--baseline needs a path\n{USAGE}"))?;
                cfg.baseline = Some(PathBuf::from(path));
            }
            s if s.starts_with("--baseline=") => {
                cfg.baseline = Some(PathBuf::from(&s["--baseline=".len()..]));
            }
            s if s.starts_with("--seed=") => {
                cfg.seed =
                    s["--seed=".len()..].parse().map_err(|_| format!("bad seed in {s:?}"))?;
            }
            s if s.starts_with("--shards=") => {
                cfg.shards = s["--shards=".len()..]
                    .parse()
                    .map_err(|_| format!("bad shard count in {s:?}"))?;
            }
            s if s.starts_with("--plan=") => {
                cfg.plan = QueryPlan::parse(&s["--plan=".len()..])
                    .ok_or(format!("bad plan in {s:?} (parallel|sequential|adaptive)\n{USAGE}"))?;
            }
            "--no-cache" => cfg.cached = false,
            "perf" => cfg.perf = true,
            "chaos" => cfg.chaos = true,
            "scale" => cfg.scale = true,
            "durability" => cfg.durability = true,
            s => match Artifact::parse(s) {
                Some(mut v) => artifacts.append(&mut v),
                None => return Err(format!("unknown target {s:?}\n{USAGE}")),
            },
        }
    }
    if artifacts.is_empty() {
        artifacts = Artifact::ALL.to_vec();
    }
    artifacts.dedup();
    Ok((cfg, artifacts))
}

/// One completed artifact run, ready for the JSON export.
#[derive(Debug, Clone)]
pub struct ArtifactRun {
    /// The artifact regenerated.
    pub artifact: Artifact,
    /// Its structured report.
    pub report: Report,
    /// Wall-clock milliseconds the run took.
    pub elapsed_ms: f64,
}

/// Serialize a full repro run against the stable `lorm-repro/bench-v1`
/// schema (documented in README.md): config, then one object per
/// artifact with its tables, full-precision summaries, and notes.
pub fn render_json(cfg: &ReproConfig, runs: &[ArtifactRun]) -> String {
    use sim::report::{json_num, json_str};
    let sim_cfg = cfg.sim();
    let p = sim_cfg.params();
    let mut out = String::from("{\"schema\":\"lorm-repro/bench-v1\",\"config\":{");
    out.push_str(&format!(
        "\"quick\":{},\"seed\":{},\"shards\":{},\"n\":{},\"m\":{},\"k\":{},\"d\":{},\"plan\":{}}}",
        cfg.quick,
        cfg.seed,
        cfg.shards,
        p.n,
        p.m,
        p.k,
        p.d,
        json_str(cfg.plan.name())
    ));
    out.push_str(",\"artifacts\":[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"elapsed_ms\":{},",
            json_str(r.artifact.name()),
            json_num(r.elapsed_ms)
        ));
        // splice the report object's fields into this artifact object
        let body = r.report.to_json();
        out.push_str(&body[1..]);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_to_all() {
        let (cfg, arts) = parse_args(Vec::<String>::new()).unwrap();
        assert!(!cfg.quick);
        assert_eq!(arts.len(), Artifact::ALL.len());
    }

    #[test]
    fn parse_quick_and_targets() {
        let (cfg, arts) = parse_args(["--quick".into(), "fig4".into(), "t410".into()]).unwrap();
        assert!(cfg.quick);
        assert_eq!(arts, vec![Artifact::Fig4, Artifact::T410]);
    }

    #[test]
    fn parse_seed() {
        let (cfg, _) = parse_args(["--seed=42".into()]).unwrap();
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse_args(["fig9".into()]).is_err());
        assert!(parse_args(["--seed=x".into()]).is_err());
    }

    #[test]
    fn fig3_group_expands() {
        let (_, arts) = parse_args(["fig3".into()]).unwrap();
        assert_eq!(arts, vec![Artifact::Fig3a, Artifact::Fig3Dirs]);
    }

    #[test]
    fn quick_fig3a_renders_table() {
        let cfg = ReproConfig { quick: true, seed: 7, ..ReproConfig::default() };
        // trim the sweep further for the unit test
        let out = fig3::fig3a(&[5], 8, 7).to_string();
        assert!(out.contains("Figure 3(a)"));
        assert!(out.contains("Mercury"));
        let _ = cfg;
    }

    #[test]
    fn quick_t410_renders_table() {
        let cfg = ReproConfig { quick: true, seed: 7, ..ReproConfig::default() };
        let out = run_artifact(Artifact::T410, &cfg);
        assert!(out.contains("Theorem 4.10"), "got: {out}");
        assert!(out.contains("LORM"));
    }

    #[test]
    fn every_artifact_runs_end_to_end_in_quick_mode() {
        // The full-scale run is recorded in EXPERIMENTS.md; this guards
        // that every artifact stays runnable. Quick mode, tiny batches.
        let cfg = ReproConfig { quick: true, seed: 3, ..ReproConfig::default() };
        for a in Artifact::ALL {
            let rep = run_artifact_report(a, &cfg);
            let out = rep.to_string();
            assert!(out.contains('|'), "{a:?} produced no table:\n{out}");
            assert!(out.contains("##"), "{a:?} produced no title");
            assert!(!rep.tables().is_empty(), "{a:?} report has no tables");
            let j = rep.to_json();
            assert!(j.starts_with("{\"tables\":["), "{a:?} bad json head: {j}");
        }
    }

    #[test]
    fn theorem_table_shows_papers_headline_numbers() {
        let out = theorem_table(&analysis::Params::paper());
        // §V.A quotes 8.78 (T4.3) and 1.28 (T4.5); §V.B quotes 513/514/3/1.
        assert!(out.contains("8.78"), "{out}");
        assert!(out.contains("1.28"));
        assert!(out.contains("513.0"));
        assert!(out.contains("514.0"));
        assert!(out.contains("Theorems 4.1-4.10 at n = 2048"));
    }

    #[test]
    fn fig6_group_expands_to_both_metrics() {
        let (_, arts) = parse_args(["fig6".into()]).unwrap();
        assert_eq!(arts, vec![Artifact::Fig6a, Artifact::Fig6b]);
        let (_, all) = parse_args(["all".into()]).unwrap();
        assert_eq!(all.len(), Artifact::ALL.len());
    }

    #[test]
    fn parse_json_flag_both_forms() {
        // space-separated form
        let (cfg, arts) =
            parse_args(["--quick".into(), "fig4".into(), "--json".into(), "out.json".into()])
                .unwrap();
        assert_eq!(cfg.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(arts, vec![Artifact::Fig4]);
        // = form
        let (cfg, _) = parse_args(["--json=metrics.json".into()]).unwrap();
        assert_eq!(cfg.json.as_deref(), Some(std::path::Path::new("metrics.json")));
        // missing path is an error
        assert!(parse_args(["--json".into()]).is_err());
    }

    #[test]
    fn parse_perf_target() {
        let (cfg, _) = parse_args(["--quick".into(), "perf".into()]).unwrap();
        assert!(cfg.perf);
        assert!(cfg.quick);
        let (cfg, _) = parse_args(["fig4".into()]).unwrap();
        assert!(!cfg.perf);
    }

    #[test]
    fn parse_chaos_target() {
        let (cfg, _) = parse_args(["--quick".into(), "chaos".into()]).unwrap();
        assert!(cfg.chaos);
        assert!(!cfg.perf);
        let (cfg, _) = parse_args(["fig4".into()]).unwrap();
        assert!(!cfg.chaos);
    }

    #[test]
    fn parse_scale_target() {
        let (cfg, _) = parse_args(["--quick".into(), "scale".into()]).unwrap();
        assert!(cfg.scale);
        assert!(!cfg.perf && !cfg.chaos);
        let (cfg, _) = parse_args(["fig4".into()]).unwrap();
        assert!(!cfg.scale);
    }

    #[test]
    fn parse_durability_target() {
        let (cfg, _) = parse_args(["--quick".into(), "durability".into()]).unwrap();
        assert!(cfg.durability);
        assert!(!cfg.perf && !cfg.chaos && !cfg.scale);
        let (cfg, _) = parse_args(["fig4".into()]).unwrap();
        assert!(!cfg.durability);
    }

    #[test]
    fn parse_plan_flag() {
        let (cfg, _) = parse_args(Vec::<String>::new()).unwrap();
        assert_eq!(cfg.plan, QueryPlan::Parallel, "default is the paper's plan");
        for (s, plan) in [
            ("parallel", QueryPlan::Parallel),
            ("sequential", QueryPlan::Sequential),
            ("adaptive", QueryPlan::Adaptive),
        ] {
            let (cfg, _) = parse_args([format!("--plan={s}")]).unwrap();
            assert_eq!(cfg.plan, plan);
        }
        assert!(parse_args(["--plan=greedy".into()]).is_err());
    }

    #[test]
    fn planned_fig5_runs_and_ships_less_under_adaptive() {
        let cfg = ReproConfig {
            quick: true,
            seed: 3,
            plan: QueryPlan::Adaptive,
            ..ReproConfig::default()
        };
        let adaptive = run_artifact_report(Artifact::Fig5, &cfg);
        let parallel = run_artifact_report(
            Artifact::Fig5,
            &ReproConfig { plan: QueryPlan::Parallel, ..cfg.clone() },
        );
        // adaptive short-circuits, so total visited nodes can only shrink
        let visited = |rep: &Report| rep.summaries().iter().map(|(_, s)| s.total()).sum::<f64>();
        assert!(visited(&adaptive) <= visited(&parallel) + 1e-9);
    }

    #[test]
    fn parse_shards_flag() {
        let (cfg, _) = parse_args(["--shards=4".into()]).unwrap();
        assert_eq!(cfg.shards, 4);
        assert!(parse_args(["--shards=x".into()]).is_err());
        let (cfg, _) = parse_args(Vec::<String>::new()).unwrap();
        assert_eq!(cfg.shards, 0, "default auto-detects");
    }

    #[test]
    fn artifact_names_are_stable_and_parseable() {
        for a in Artifact::ALL {
            assert_eq!(Artifact::parse(a.name()), Some(vec![a]), "{a:?}");
        }
    }

    #[test]
    fn render_json_emits_schema_config_and_artifacts() {
        let cfg = ReproConfig { quick: true, seed: 3, ..ReproConfig::default() };
        let runs = vec![
            ArtifactRun {
                artifact: Artifact::Theorems,
                report: theorem_report(&cfg.sim().params()),
                elapsed_ms: 1.5,
            },
            ArtifactRun {
                artifact: Artifact::T410,
                report: run_artifact_report(Artifact::T410, &cfg),
                elapsed_ms: 20.0,
            },
        ];
        let j = render_json(&cfg, &runs);
        assert!(j.starts_with("{\"schema\":\"lorm-repro/bench-v1\",\"config\":{"), "{j}");
        assert!(j.contains("\"quick\":true"));
        assert!(j.contains("\"seed\":3"));
        assert!(j.contains("\"plan\":\"parallel\""));
        assert!(j.contains("\"name\":\"theorems\",\"elapsed_ms\":1.5,\"tables\":["));
        assert!(j.contains("\"name\":\"t410\""));
        // the t410 report carries per-system summaries with failure counts
        assert!(j.contains("\"label\":\"LORM\""), "{j}");
        assert!(j.contains("\"failures\":0"));
        // balanced braces/brackets (outside strings there are no quotes to
        // confuse this rough check: table cells never contain braces)
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes, "unbalanced JSON object braces");
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.ends_with("]}"));
    }
}
