//! `repro durability` — the replication/durability sweep.
//!
//! Drives every (churn rate × replication degree × system) cell of the
//! durability experiment, renders the data-loss and repair-traffic
//! tables, and serializes against the stable `lorm-repro/durability-v1`
//! schema (documented in docs/SCHEMAS.md). Two result-bearing checks ride
//! along and make the binary exit non-zero on violation — the same
//! pattern as `repro scale`'s growth checks:
//!
//! * **k-monotonicity** — surviving pieces non-decreasing in the
//!   replication degree at every rate and system (pathwise guarantee);
//! * **theory checks** — the simulated successor staleness and
//!   lookup-failure fractions must match Krishnamurthy et al.'s closed
//!   forms within the stated tolerance bands.

use crate::ReproConfig;
use sim::experiments::durability::{durability_cached, Durability, DurabilitySetup};
use sim::BedCache;

/// Run the durability sweep at the configuration's scale.
pub fn run_durability(cfg: &ReproConfig) -> Durability {
    run_durability_cached(cfg, &BedCache::new())
}

/// Run the durability sweep against a shared bed cache: every (rate,
/// degree, system) cell clones one cached prototype per system, so the
/// sweep pays construction once per system total.
pub fn run_durability_cached(cfg: &ReproConfig, cache: &BedCache) -> Durability {
    let mut setup = if cfg.quick { DurabilitySetup::quick() } else { DurabilitySetup::default() };
    setup.shards = cfg.shards;
    durability_cached(&cfg.sim(), &setup, cache)
}

/// Serialize a durability sweep against the stable
/// `lorm-repro/durability-v1` schema.
pub fn render_durability_json(cfg: &ReproConfig, d: &Durability) -> String {
    use sim::report::{json_num, json_str, summary_json};
    let p = cfg.sim().params();
    let nums = |xs: &[f64]| xs.iter().map(|&x| json_num(x)).collect::<Vec<_>>().join(",");
    let mut out = String::from("{\"schema\":\"lorm-repro/durability-v1\",\"config\":{");
    out.push_str(&format!(
        "\"quick\":{},\"seed\":{},\"shards\":{},\"n\":{},\"m\":{},\"k\":{},\"d\":{},",
        cfg.quick, cfg.seed, cfg.shards, p.n, p.m, p.k, p.d
    ));
    out.push_str(&format!(
        "\"rates\":[{}],\"degrees\":[{}],\"duration\":{},\"maintenance_period\":{},\"graceful_ratio\":{}}}",
        nums(&d.setup.rates),
        d.setup.degrees.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(","),
        json_num(d.setup.duration),
        json_num(d.setup.maintenance_period),
        json_num(d.setup.graceful_ratio),
    ));
    out.push_str(",\"rows\":[");
    let systems = ["LORM", "Mercury", "SWORD", "MAAN"];
    for (i, r) in d.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"rate\":{},\"k\":{},\"cells\":[", json_num(r.rate), r.k));
        for (j, (name, c)) in systems.iter().zip(r.cells.iter()).enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"system\":{},\"initial\":{},\"surviving\":{},\"loss\":{},\"events\":{},\
                 \"repair_rounds\":{},\"repair_copies\":{},\"repair_promotions\":{},\
                 \"repair_dropped\":{},\"repair_transfers\":{},\"probe\":{}}}",
                json_str(name),
                c.initial,
                c.surviving,
                json_num(c.loss),
                c.events,
                c.repair_rounds,
                c.repair_copies,
                c.repair_promotions,
                c.repair_dropped,
                c.repair_transfers(),
                summary_json(name, &c.probe),
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],\"k_monotonicity\":{");
    let violations = d.k_monotonicity_violations();
    out.push_str(&format!("\"ok\":{},\"violations\":[", violations.is_empty()));
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(v));
    }
    out.push_str("]},\"theory_checks\":[");
    for (i, c) in d.checks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"rate\":{},\"simulated\":{},\"predicted\":{},\"tol_rel\":{},\
             \"tol_abs\":{},\"ok\":{}}}",
            json_str(&c.name),
            json_num(c.rate),
            json_num(c.simulated),
            json_num(c.predicted),
            json_num(c.tol_rel),
            json_num(c.tol_abs),
            c.ok,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::experiments::durability::durability;
    use sim::SimConfig;

    fn tiny_durability() -> (ReproConfig, Durability) {
        let cfg = ReproConfig { quick: true, seed: 7, durability: true, ..ReproConfig::default() };
        let sim_cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let setup = DurabilitySetup {
            rates: vec![0.4],
            degrees: vec![1, 2],
            duration: 100.0,
            probe_origins: 6,
            probe_per_origin: 2,
            ..DurabilitySetup::quick()
        };
        (cfg, durability(&sim_cfg, &setup))
    }

    #[test]
    fn durability_json_has_schema_rows_and_checks() {
        let (cfg, d) = tiny_durability();
        let j = render_durability_json(&cfg, &d);
        assert!(j.starts_with("{\"schema\":\"lorm-repro/durability-v1\",\"config\":{"), "{j}");
        assert!(j.contains("\"rates\":[0.4]"), "{j}");
        assert!(j.contains("\"degrees\":[1,2]"), "{j}");
        assert!(j.contains("\"system\":\"LORM\""), "{j}");
        assert!(j.contains("\"system\":\"MAAN\""), "{j}");
        assert!(j.contains("\"loss\":"), "{j}");
        assert!(j.contains("\"repair_transfers\":"), "{j}");
        assert!(j.contains("\"k_monotonicity\":{\"ok\":true,\"violations\":[]}"), "{j}");
        assert!(j.contains("\"theory_checks\":[{\"name\":\"stale_first_successor\""), "{j}");
        assert!(j.ends_with("]}"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn durability_rows_cover_the_degree_grid() {
        let (_, d) = tiny_durability();
        assert_eq!(d.rows.len(), 2, "1 rate x 2 degrees");
        let k1 = &d.rows[0];
        let k2 = &d.rows[1];
        assert_eq!((k1.k, k2.k), (1, 2));
        for (a, b) in k1.cells.iter().zip(k2.cells.iter()) {
            assert_eq!(a.initial, b.initial, "identity census must not depend on k");
            assert!(b.surviving >= a.surviving, "k=2 must not lose more than k=1");
            assert_eq!(a.repair_transfers(), 0, "k=1 repair must be a no-op");
        }
    }
}
