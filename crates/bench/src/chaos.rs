//! `repro chaos` — the fault-injection robustness sweep.
//!
//! Replays a fixed range-query batch through all four systems under
//! every (message-loss rate × ungraceful-failure fraction) cell of a
//! seeded sweep and renders the success-rate / hop-inflation curves
//! against the stable `lorm-repro/chaos-v1` schema (documented in
//! EXPERIMENTS.md). Every system's fault-free baseline summary is
//! embedded in the export so consumers (CI's `chaos-smoke` job) can
//! assert the zero-fault cell is bit-identical to it without re-running
//! anything.

use crate::ReproConfig;
use sim::experiments::chaos::{chaos, Chaos, ChaosSetup};
use sim::BedCache;

/// Run the chaos sweep at the configuration's scale.
pub fn run_chaos(cfg: &ReproConfig) -> Chaos {
    run_chaos_cached(cfg, &BedCache::new())
}

/// Run the chaos sweep against a shared bed cache: the sweep itself
/// already reuses one bed across every (loss × fail) cell, so the cache's
/// contribution is sharing that bed with any other pipeline in the same
/// invocation (e.g. the perf harness's figure kernels).
pub fn run_chaos_cached(cfg: &ReproConfig, cache: &BedCache) -> Chaos {
    let setup = if cfg.quick { ChaosSetup::quick() } else { ChaosSetup::default() };
    let bed = cache.bed(cfg.sim());
    chaos(&bed, setup)
}

/// Serialize a chaos sweep against the stable `lorm-repro/chaos-v1`
/// schema.
///
/// Per system the export carries the fault-free `baseline` summary and
/// one object per sweep cell; cell summaries are rendered by the same
/// serializer as the baseline, so zero-fault parity is a plain
/// field-by-field equality for consumers (floats round-trip via Rust's
/// shortest-representation formatting, which is injective on bits).
pub fn render_chaos_json(cfg: &ReproConfig, c: &Chaos) -> String {
    use sim::report::{json_num, json_str, summary_json};
    let p = cfg.sim().params();
    let mut out = String::from("{\"schema\":\"lorm-repro/chaos-v1\",\"config\":{");
    out.push_str(&format!(
        "\"quick\":{},\"seed\":{},\"shards\":{},\"n\":{},\"m\":{},\"k\":{},\"d\":{},",
        cfg.quick, cfg.seed, cfg.shards, p.n, p.m, p.k, p.d
    ));
    out.push_str(&format!(
        "\"fault_seed\":{},\"queries\":{},\"arity\":{},",
        c.setup.fault_seed, c.queries, c.setup.arity
    ));
    let rates = |xs: &[f64]| xs.iter().map(|&x| json_num(x)).collect::<Vec<_>>().join(",");
    out.push_str(&format!(
        "\"loss_rates\":[{}],\"fail_fracs\":[{}]}}",
        rates(&c.setup.loss_rates),
        rates(&c.setup.fail_fracs)
    ));
    out.push_str(",\"systems\":[");
    for (i, sys) in c.systems.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"baseline\":{},\"cells\":[",
            json_str(sys.name),
            summary_json(sys.name, &sys.baseline)
        ));
        for (j, cell) in sys.cells.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"loss\":{},\"fail_frac\":{},\"success_rate\":{},\"hop_inflation\":{},\"summary\":{}}}",
                json_num(cell.loss),
                json_num(cell.fail_frac),
                json_num(cell.success_rate()),
                json_num(cell.hop_inflation(&sys.baseline)),
                summary_json(sys.name, &cell.summary)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::experiments::chaos::ChaosSetup;
    use sim::{SimConfig, TestBed};

    fn tiny_chaos() -> (ReproConfig, Chaos) {
        let cfg = ReproConfig { quick: true, seed: 7, chaos: true, ..ReproConfig::default() };
        let sim_cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(sim_cfg);
        let setup = ChaosSetup {
            loss_rates: vec![0.0, 0.2],
            fail_fracs: vec![0.0],
            origins: 10,
            per_origin: 3,
            arity: 2,
            ..ChaosSetup::default()
        };
        (cfg, chaos(&bed, setup))
    }

    #[test]
    fn chaos_json_has_schema_config_and_systems() {
        let (cfg, c) = tiny_chaos();
        let j = render_chaos_json(&cfg, &c);
        assert!(j.starts_with("{\"schema\":\"lorm-repro/chaos-v1\",\"config\":{"), "{j}");
        assert!(j.contains("\"fault_seed\":"), "{j}");
        assert!(j.contains("\"loss_rates\":[0,0.2]"), "{j}");
        assert!(j.contains("\"fail_fracs\":[0]"), "{j}");
        assert!(j.contains("\"name\":\"LORM\""), "{j}");
        assert!(j.contains("\"baseline\":{\"label\":\"LORM\""), "{j}");
        assert!(j.contains("\"success_rate\":1"), "{j}");
        assert!(j.ends_with("]}"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn zero_fault_cell_serializes_bit_identical_to_baseline() {
        // The parity guarantee the CI job asserts: the zero-fault cell's
        // summary object is the exact same string as the baseline's.
        let (cfg, c) = tiny_chaos();
        let j = render_chaos_json(&cfg, &c);
        use sim::report::summary_json;
        for sys in &c.systems {
            let baseline = summary_json(sys.name, &sys.baseline);
            let zero = &sys.cells[0];
            assert_eq!(zero.loss, 0.0);
            assert_eq!(zero.fail_frac, 0.0);
            assert_eq!(summary_json(sys.name, &zero.summary), baseline, "{}", sys.name);
            // both the baseline field and the parity cell carry it
            assert!(j.matches(baseline.as_str()).count() >= 2, "{}", sys.name);
        }
    }
}
