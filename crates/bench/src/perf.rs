//! `repro perf` — the wall-clock performance baseline.
//!
//! Times the hot kernels every figure decomposes into (overlay routing,
//! maintenance repair, LORM range probing) plus the quick-mode figure
//! pipelines end to end, and renders the result against the stable
//! `lorm-repro/perf-v1` schema. The committed `BENCH_*.json` files are
//! produced by this mode; CI re-runs it and fails on a >25% per-kernel
//! wall-clock regression (see `.github/workflows/ci.yml`).
//!
//! Allocation counts come from a counting `#[global_allocator]` that only
//! the `repro` binary (and the `alloc_count` test binary) installs — this
//! library forbids `unsafe`, so the binary passes the counter in as a
//! plain function pointer.

use crate::{run_artifact_report, Artifact, ReproConfig};
use chord::{Chord, ChordConfig};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::Overlay;
use grid_resource::{QueryMix, ResourceDiscovery, Workload};
use lorm::{Lorm, LormConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Counts heap allocations performed while running the closure. Installed
/// by binaries with a counting global allocator; `None` reports
/// `allocs_per_iter` as unmeasured.
pub type AllocCounter = fn(&mut dyn FnMut()) -> u64;

/// One timed kernel.
#[derive(Debug, Clone)]
pub struct PerfKernel {
    /// Stable kernel name (schema field).
    pub name: &'static str,
    /// Iterations timed.
    pub iters: u64,
    /// Total wall-clock milliseconds for all iterations.
    pub elapsed_ms: f64,
    /// Iterations per second.
    pub ops_per_sec: f64,
    /// Mean heap allocations per iteration, when a counter was installed.
    pub allocs_per_iter: Option<f64>,
}

fn time_kernel(name: &'static str, iters: u64, mut f: impl FnMut()) -> PerfKernel {
    // Best of three passes for repeatable micro-kernels: scheduler blips
    // inflate a single pass, and the regression gate needs a stable floor.
    // Single-iteration kernels (the figure pipelines) run once — they are
    // long enough to average their own noise out.
    let passes = if iters > 1 { 3 } else { 1 };
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let started = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    PerfKernel {
        name,
        iters,
        elapsed_ms: best * 1e3,
        ops_per_sec: iters as f64 / best.max(1e-12),
        allocs_per_iter: None,
    }
}

/// Run every perf kernel at the configuration's scale.
pub fn run_perf(cfg: &ReproConfig, counter: Option<AllocCounter>) -> Vec<PerfKernel> {
    let (n_chord, d, route_iters, probe_iters) = if cfg.quick {
        (512usize, 7u8, 50_000u64, 2_000u64)
    } else {
        (2048usize, 8u8, 200_000u64, 2_000u64)
    };
    let n_cycloid = d as usize * (1usize << d);
    let mut kernels = Vec::new();

    // --- overlay routing: the innermost kernel of every figure ---------
    let chord = Chord::build(n_chord, ChordConfig { seed: cfg.seed, ..ChordConfig::default() });
    let cycloid = Cycloid::build(n_cycloid, CycloidConfig { dimension: d, seed: cfg.seed });
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9E3779B97F4A7C15);
    let chord_plan: Vec<(dht_core::NodeIdx, u64)> = (0..route_iters)
        .map(|_| {
            // lint:allow(panic-hygiene): the network was just built with
            // n >= 1 live nodes.
            (chord.random_node(&mut rng).expect("live node"), rng.gen())
        })
        .collect();
    let cycloid_plan: Vec<(dht_core::NodeIdx, CycloidId)> = (0..route_iters)
        .map(|_| {
            // lint:allow(panic-hygiene): the network was just built with
            // n >= 1 live nodes.
            let from = cycloid.random_node(&mut rng).expect("live node");
            let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
            (from, key)
        })
        .collect();

    let mut k = time_kernel("chord_route_stats", route_iters, {
        let mut i = 0usize;
        let plan = &chord_plan;
        let net = &chord;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route_stats(from, key).map(|r| r.hops).unwrap_or(0));
            i += 1;
        }
    });
    measure_allocs(&mut k, counter, probe_iters, {
        let mut i = 0usize;
        let plan = &chord_plan;
        let net = &chord;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route_stats(from, key).map(|r| r.hops).unwrap_or(0));
            i += 1;
        }
    });
    kernels.push(k);

    let mut k = time_kernel("chord_route_traced", route_iters, {
        let mut i = 0usize;
        let plan = &chord_plan;
        let net = &chord;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route(from, key).map(|r| r.hops()).unwrap_or(0));
            i += 1;
        }
    });
    measure_allocs(&mut k, counter, probe_iters, {
        let mut i = 0usize;
        let plan = &chord_plan;
        let net = &chord;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route(from, key).map(|r| r.hops()).unwrap_or(0));
            i += 1;
        }
    });
    kernels.push(k);

    let mut k = time_kernel("cycloid_route_stats", route_iters, {
        let mut i = 0usize;
        let plan = &cycloid_plan;
        let net = &cycloid;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route_stats(from, key).map(|r| r.hops).unwrap_or(0));
            i += 1;
        }
    });
    measure_allocs(&mut k, counter, probe_iters, {
        let mut i = 0usize;
        let plan = &cycloid_plan;
        let net = &cycloid;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route_stats(from, key).map(|r| r.hops).unwrap_or(0));
            i += 1;
        }
    });
    kernels.push(k);

    let mut k = time_kernel("cycloid_route_traced", route_iters, {
        let mut i = 0usize;
        let plan = &cycloid_plan;
        let net = &cycloid;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route(from, key).map(|r| r.hops()).unwrap_or(0));
            i += 1;
        }
    });
    measure_allocs(&mut k, counter, probe_iters, {
        let mut i = 0usize;
        let plan = &cycloid_plan;
        let net = &cycloid;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route(from, key).map(|r| r.hops()).unwrap_or(0));
            i += 1;
        }
    });
    kernels.push(k);

    // --- maintenance: the perfect-repair tick every churn round pays ---
    let maint_iters = if cfg.quick { 10 } else { 20 };
    let mut maint_net =
        Chord::build(n_chord, ChordConfig { seed: cfg.seed ^ 1, ..ChordConfig::default() });
    kernels.push(time_kernel("chord_maintenance", maint_iters, || {
        maint_net.rebuild_all_state();
        std::hint::black_box(maint_net.len());
    }));

    // --- LORM range probing: route + cluster walk + directory scan -----
    let sim_cfg = cfg.sim();
    let mut wl_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x10);
    let workload = Workload::generate(sim_cfg.workload_config(), &mut wl_rng)
        // lint:allow(panic-hygiene): SimConfig always yields a valid
        // WorkloadConfig (nonzero counts, ordered domain).
        .expect("valid config");
    let mut lorm = Lorm::new(
        sim_cfg.nodes,
        &workload.space,
        LormConfig { dimension: sim_cfg.dimension, seed: cfg.seed, ..LormConfig::default() },
    );
    lorm.place_all(&workload.reports);
    let probe_q = if cfg.quick { 1_000u64 } else { 5_000u64 };
    let mut q_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x11);
    kernels.push(time_kernel("lorm_range_probe", probe_q, || {
        let q = workload.random_query(1, QueryMix::Range, &mut q_rng);
        let origin = q_rng.gen_range(0..sim_cfg.nodes);
        std::hint::black_box(lorm.query_from(origin, &q).map(|o| o.tally.visited).unwrap_or(0));
    }));

    // --- quick-mode figure pipelines, end to end -----------------------
    let fig_cfg = ReproConfig { quick: true, json: None, perf: false, ..cfg.clone() };
    for (name, arts) in [
        ("fig4_quick", &[Artifact::Fig4][..]),
        ("fig5_quick", &[Artifact::Fig5][..]),
        ("fig6_quick", &[Artifact::Fig6a, Artifact::Fig6b][..]),
    ] {
        kernels.push(time_kernel(name, 1, || {
            for &a in arts {
                std::hint::black_box(run_artifact_report(a, &fig_cfg).tables().len());
            }
        }));
    }

    kernels
}

/// Re-run `probe_iters` iterations under the allocation counter and
/// record the mean count. No-op when no counter is installed.
fn measure_allocs(
    k: &mut PerfKernel,
    counter: Option<AllocCounter>,
    probe_iters: u64,
    mut f: impl FnMut(),
) {
    let Some(count) = counter else { return };
    let mut run = || {
        for _ in 0..probe_iters {
            f();
        }
    };
    let total = count(&mut run);
    k.allocs_per_iter = Some(total as f64 / probe_iters as f64);
}

/// Serialize a perf run against the stable `lorm-repro/perf-v1` schema.
pub fn render_perf_json(cfg: &ReproConfig, kernels: &[PerfKernel]) -> String {
    use sim::report::{json_num, json_str};
    let p = cfg.sim().params();
    let mut out = String::from("{\"schema\":\"lorm-repro/perf-v1\",\"config\":{");
    out.push_str(&format!(
        "\"quick\":{},\"seed\":{},\"shards\":{},\"n\":{},\"m\":{},\"k\":{},\"d\":{}}}",
        cfg.quick, cfg.seed, cfg.shards, p.n, p.m, p.k, p.d
    ));
    out.push_str(",\"kernels\":[");
    for (i, k) in kernels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"iters\":{},\"elapsed_ms\":{},\"ops_per_sec\":{},\"allocs_per_iter\":{}}}",
            json_str(k.name),
            k.iters,
            json_num(k.elapsed_ms),
            json_num(k.ops_per_sec),
            match k.allocs_per_iter {
                Some(a) => json_num(a),
                None => "null".into(),
            }
        ));
    }
    out.push_str("]}");
    out
}

/// Render the perf run as a markdown table for terminal output.
pub fn render_perf_table(kernels: &[PerfKernel]) -> String {
    let mut out = String::from("## Performance kernels\n\n");
    out.push_str("| kernel | iters | elapsed (ms) | ops/sec | allocs/iter |\n");
    out.push_str("|---|---|---|---|---|\n");
    for k in kernels {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.0} | {} |\n",
            k.name,
            k.iters,
            k.elapsed_ms,
            k.ops_per_sec,
            match k.allocs_per_iter {
                Some(a) => format!("{a:.2}"),
                None => "-".into(),
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ReproConfig {
        ReproConfig { quick: true, seed: 7, ..ReproConfig::default() }
    }

    #[test]
    fn perf_json_has_schema_config_and_kernels() {
        let cfg = tiny_cfg();
        let kernels = vec![
            PerfKernel {
                name: "chord_route_stats",
                iters: 100,
                elapsed_ms: 2.5,
                ops_per_sec: 40_000.0,
                allocs_per_iter: Some(0.0),
            },
            PerfKernel {
                name: "fig4_quick",
                iters: 1,
                elapsed_ms: 150.0,
                ops_per_sec: 6.7,
                allocs_per_iter: None,
            },
        ];
        let j = render_perf_json(&cfg, &kernels);
        assert!(j.starts_with("{\"schema\":\"lorm-repro/perf-v1\",\"config\":{"), "{j}");
        assert!(j.contains("\"quick\":true"));
        assert!(j.contains("\"name\":\"chord_route_stats\",\"iters\":100"));
        assert!(j.contains("\"allocs_per_iter\":0"));
        assert!(j.contains("\"allocs_per_iter\":null"));
        assert!(j.ends_with("]}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn perf_table_lists_every_kernel() {
        let kernels = vec![PerfKernel {
            name: "cycloid_route_stats",
            iters: 10,
            elapsed_ms: 1.0,
            ops_per_sec: 10_000.0,
            allocs_per_iter: None,
        }];
        let t = render_perf_table(&kernels);
        assert!(t.contains("cycloid_route_stats"));
        assert!(t.contains("| - |"), "unmeasured allocs render as a dash: {t}");
    }

    #[test]
    fn route_kernels_time_and_report() {
        // A minimal end-to-end run of the routing kernels only would still
        // build full networks; instead exercise the helper directly.
        let k = time_kernel("probe", 50, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(k.iters, 50);
        assert!(k.elapsed_ms >= 0.0);
        assert!(k.ops_per_sec > 0.0);
        assert!(k.allocs_per_iter.is_none());
    }
}
