//! `repro perf` — the wall-clock performance baseline.
//!
//! Times the hot kernels every figure decomposes into (overlay routing,
//! maintenance repair, LORM range probing), the bed-construction phase
//! the [`sim::BedCache`] amortizes (`build_bed_*`, `bed_clone`), and the
//! quick-mode figure pipelines end to end against a warm cache, and
//! renders the result against the stable `lorm-repro/perf-v2` schema
//! (per-kernel `phase` tag plus a build/query wall-clock split). The
//! committed `BENCH_*.json` files are produced by this mode; CI re-runs
//! it and fails on a per-kernel wall-clock regression past
//! [`REGRESSION_THRESHOLD`] (query) / [`BUILD_REGRESSION_THRESHOLD`]
//! (build) — see `.github/workflows/ci.yml` — and `repro perf
//! --baseline <path>` applies the same gate locally before push.
//!
//! Allocation counts come from a counting `#[global_allocator]` that only
//! the `repro` binary (and the `alloc_count` test binary) installs — this
//! library forbids `unsafe`, so the binary passes the counter in as a
//! plain function pointer.

use crate::{run_artifact_report_cached, Artifact, ReproConfig};
use analysis::System;
use chord::{Chord, ChordConfig};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::Overlay;
use grid_resource::{intersect_sorted, QueryMix, QueryPlan, ResourceDiscovery, Workload};
use lorm::{Lorm, LormConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim::{build_system, BedCache, TestBed};
use std::time::Instant;

/// Counts heap allocations performed while running the closure. Installed
/// by binaries with a counting global allocator; `None` reports
/// `allocs_per_iter` as unmeasured.
pub type AllocCounter = fn(&mut dyn FnMut()) -> u64;

/// Wall-clock phase a kernel belongs to: `"build"` for bed construction
/// and snapshotting (the cost the [`BedCache`] amortizes), `"query"` for
/// everything driven against an already stabilized bed.
pub type Phase = &'static str;

/// One timed kernel.
#[derive(Debug, Clone)]
pub struct PerfKernel {
    /// Stable kernel name (schema field).
    pub name: &'static str,
    /// Which wall-clock phase this kernel measures (`"build"`/`"query"`).
    pub phase: Phase,
    /// Iterations timed.
    pub iters: u64,
    /// Total wall-clock milliseconds for all iterations.
    pub elapsed_ms: f64,
    /// Iterations per second.
    pub ops_per_sec: f64,
    /// Mean heap allocations per iteration, when a counter was installed.
    pub allocs_per_iter: Option<f64>,
    /// Route-cache hit rate over one deterministic warm pass, for the
    /// cached kernels only. A pure function of the seed and the cache
    /// geometry — CI pins it exactly against the committed baseline.
    pub cache_hit_rate: Option<f64>,
}

fn time_kernel(name: &'static str, phase: Phase, iters: u64, mut f: impl FnMut()) -> PerfKernel {
    // Best-of-N timing with a reproduced floor: scheduler blips inflate
    // a single pass by 30%+ even on the sub-second kernels, and the
    // regression gate needs a stable floor. A fixed pass count is not
    // enough — a bursty stall can cover all of a short kernel's passes
    // back to back — so after the minimum three passes we keep sampling
    // until a *second* pass lands within 5% of the best (the floor has
    // been reproduced, so it is not a one-off), capped at nine passes.
    let (min_passes, max_passes) = (3, 9);
    let mut times = Vec::with_capacity(max_passes);
    while times.len() < max_passes {
        let started = Instant::now();
        for _ in 0..iters {
            f();
        }
        times.push(started.elapsed().as_secs_f64());
        if times.len() >= min_passes {
            let best_so_far = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let near_floor = times.iter().filter(|&&t| t <= best_so_far * 1.05).count();
            if near_floor >= 2 {
                break;
            }
        }
    }
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    PerfKernel {
        name,
        phase,
        iters,
        elapsed_ms: best * 1e3,
        ops_per_sec: iters as f64 / best.max(1e-12),
        allocs_per_iter: None,
        cache_hit_rate: None,
    }
}

/// Run every perf kernel at the configuration's scale.
pub fn run_perf(cfg: &ReproConfig, counter: Option<AllocCounter>) -> Vec<PerfKernel> {
    let (n_chord, d, route_iters, probe_iters) = if cfg.quick {
        (512usize, 7u8, 50_000u64, 2_000u64)
    } else {
        (2048usize, 8u8, 200_000u64, 2_000u64)
    };
    let n_cycloid = d as usize * (1usize << d);
    let mut kernels = Vec::new();

    // --- overlay routing: the innermost kernel of every figure ---------
    let chord = Chord::build(n_chord, ChordConfig { seed: cfg.seed, ..ChordConfig::default() });
    let cycloid = Cycloid::build(n_cycloid, CycloidConfig { dimension: d, seed: cfg.seed });
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9E3779B97F4A7C15);
    let chord_plan: Vec<(dht_core::NodeIdx, u64)> = (0..route_iters)
        .map(|_| (chord.random_node(&mut rng).expect("live node"), rng.gen()))
        .collect();
    let cycloid_plan: Vec<(dht_core::NodeIdx, CycloidId)> = (0..route_iters)
        .map(|_| {
            let from = cycloid.random_node(&mut rng).expect("live node");
            let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
            (from, key)
        })
        .collect();

    let mut k = time_kernel("chord_route_stats", "query", route_iters, {
        let mut i = 0usize;
        let plan = &chord_plan;
        let net = &chord;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route_stats(from, key).map(|r| r.hops).unwrap_or(0));
            i += 1;
        }
    });
    measure_allocs(&mut k, counter, probe_iters, {
        let mut i = 0usize;
        let plan = &chord_plan;
        let net = &chord;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route_stats(from, key).map(|r| r.hops).unwrap_or(0));
            i += 1;
        }
    });
    kernels.push(k);

    let mut k = time_kernel("chord_route_traced", "query", route_iters, {
        let mut i = 0usize;
        let plan = &chord_plan;
        let net = &chord;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route(from, key).map(|r| r.hops()).unwrap_or(0));
            i += 1;
        }
    });
    measure_allocs(&mut k, counter, probe_iters, {
        let mut i = 0usize;
        let plan = &chord_plan;
        let net = &chord;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route(from, key).map(|r| r.hops()).unwrap_or(0));
            i += 1;
        }
    });
    kernels.push(k);

    let mut k = time_kernel("cycloid_route_stats", "query", route_iters, {
        let mut i = 0usize;
        let plan = &cycloid_plan;
        let net = &cycloid;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route_stats(from, key).map(|r| r.hops).unwrap_or(0));
            i += 1;
        }
    });
    measure_allocs(&mut k, counter, probe_iters, {
        let mut i = 0usize;
        let plan = &cycloid_plan;
        let net = &cycloid;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route_stats(from, key).map(|r| r.hops).unwrap_or(0));
            i += 1;
        }
    });
    kernels.push(k);

    let mut k = time_kernel("cycloid_route_traced", "query", route_iters, {
        let mut i = 0usize;
        let plan = &cycloid_plan;
        let net = &cycloid;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route(from, key).map(|r| r.hops()).unwrap_or(0));
            i += 1;
        }
    });
    measure_allocs(&mut k, counter, probe_iters, {
        let mut i = 0usize;
        let plan = &cycloid_plan;
        let net = &cycloid;
        move || {
            let (from, key) = plan[i % plan.len()];
            std::hint::black_box(net.route(from, key).map(|r| r.hops()).unwrap_or(0));
            i += 1;
        }
    });
    kernels.push(k);

    // --- cached routing: the same plan through the route cache ---------
    // Hit rate is measured FIRST, on a deterministic schedule (fresh
    // cache, one warm pass, reset, one counted pass): the timing loop's
    // pass count varies with wall-clock, so counting hits there would
    // not reproduce across runs. Route-slot contents after any full pass
    // over the plan depend only on the plan, so the rate is a pure
    // function of the seed and CI pins it exactly.
    {
        let mut cache = dht_core::RouteCache::new();
        for &(from, key) in &chord_plan {
            let _ = dht_core::route_stats_cached(&chord, from, key, 0, &mut cache);
        }
        cache.reset_counters();
        for &(from, key) in &chord_plan {
            let _ = dht_core::route_stats_cached(&chord, from, key, 0, &mut cache);
        }
        let hit_rate = cache.hit_rate();
        let cache_cell = std::cell::RefCell::new(cache);
        let mut k = time_kernel("chord_route_cached", "query", route_iters, {
            let mut i = 0usize;
            let plan = &chord_plan;
            let net = &chord;
            let cache = &cache_cell;
            move || {
                let (from, key) = plan[i % plan.len()];
                let mut c = cache.borrow_mut();
                std::hint::black_box(
                    dht_core::route_stats_cached(net, from, key, 0, &mut c)
                        .map(|r| r.hops)
                        .unwrap_or(0),
                );
                i += 1;
            }
        });
        measure_allocs(&mut k, counter, probe_iters, {
            let mut i = 0usize;
            let plan = &chord_plan;
            let net = &chord;
            let cache = &cache_cell;
            move || {
                let (from, key) = plan[i % plan.len()];
                let mut c = cache.borrow_mut();
                std::hint::black_box(
                    dht_core::route_stats_cached(net, from, key, 0, &mut c)
                        .map(|r| r.hops)
                        .unwrap_or(0),
                );
                i += 1;
            }
        });
        k.cache_hit_rate = hit_rate;
        kernels.push(k);
    }

    // --- maintenance: the perfect-repair tick every churn round pays ---
    let maint_iters = if cfg.quick { 10 } else { 20 };
    let mut maint_net =
        Chord::build(n_chord, ChordConfig { seed: cfg.seed ^ 1, ..ChordConfig::default() });
    kernels.push(time_kernel("chord_maintenance", "query", maint_iters, || {
        maint_net.rebuild_all_state();
        std::hint::black_box(maint_net.len());
    }));

    // --- LORM range probing: route + cluster walk + directory scan -----
    let sim_cfg = cfg.sim();
    let mut wl_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x10);
    let workload =
        Workload::generate(sim_cfg.workload_config(), &mut wl_rng).expect("valid config");
    let mut lorm = Lorm::new(
        sim_cfg.nodes,
        &workload.space,
        LormConfig { dimension: sim_cfg.dimension, seed: cfg.seed, ..LormConfig::default() },
    );
    lorm.place_all(&workload.reports);
    let probe_q = if cfg.quick { 1_000u64 } else { 5_000u64 };
    let mut q_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x11);
    kernels.push(time_kernel("lorm_range_probe", "query", probe_q, || {
        let q = workload.random_query(1, QueryMix::Range, &mut q_rng);
        let origin = q_rng.gen_range(0..sim_cfg.nodes);
        std::hint::black_box(lorm.query_from(origin, &q).map(|o| o.tally.visited).unwrap_or(0));
    }));

    // --- batched LORM range probing: the sim executor's cached path ----
    // One iteration = one full batch through the locality-sorted,
    // route-cached executor (shards=1 so the caller's cache persists).
    // Hit rate measured first on the same deterministic schedule as
    // chord_route_cached, with TWO warm passes: two-touch admission means
    // a repeated walk key is stamped on pass one and recorded on pass
    // two, so pass three is the first steady-state pass. The equivalence
    // tests in `sim` prove the batch summary is bit-identical to the
    // plain executor's.
    {
        let mut batch_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x12);
        let batch: Vec<(usize, grid_resource::Query)> = (0..probe_q)
            .map(|_| {
                let origin = batch_rng.gen_range(0..sim_cfg.nodes);
                (origin, workload.random_query(1, QueryMix::Range, &mut batch_rng))
            })
            .collect();
        use sim::experiments::{run_batch_cached_sharded, Metric};
        let mut cache = dht_core::RouteCache::new();
        for _ in 0..2 {
            std::hint::black_box(run_batch_cached_sharded(
                &lorm,
                &batch,
                Metric::Visited,
                1,
                &mut cache,
            ));
        }
        cache.reset_counters();
        std::hint::black_box(run_batch_cached_sharded(
            &lorm,
            &batch,
            Metric::Visited,
            1,
            &mut cache,
        ));
        let hit_rate = cache.hit_rate();
        let cache_cell = std::cell::RefCell::new(cache);
        let mut k = time_kernel("lorm_range_probe_batched", "query", 1, {
            let batch = &batch;
            let lorm = &lorm;
            let cache = &cache_cell;
            move || {
                let mut c = cache.borrow_mut();
                std::hint::black_box(run_batch_cached_sharded(
                    lorm,
                    batch,
                    Metric::Visited,
                    1,
                    &mut c,
                ));
            }
        });
        // One timed "iteration" was the whole probe_q-query batch:
        // rescale iters/ops_per_sec to per-query units so the kernel
        // reads side by side with lorm_range_probe (elapsed_ms already
        // covers the same probe_q queries in both).
        k.iters = probe_q;
        k.ops_per_sec = probe_q as f64 / (k.elapsed_ms / 1e3).max(1e-12);
        k.cache_hit_rate = hit_rate;
        kernels.push(k);
    }

    // --- planner: zero-alloc candidate intersection --------------------
    // One iteration = refill the accumulator from the large sorted set
    // and intersect the small one into it in place. The refill stays
    // within the pre-sized capacity, so a nonzero allocs/iter here means
    // the merge kernel itself regressed (the alloc_count_planner test
    // pins the same invariant exactly).
    {
        let mut i_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x13);
        let mut sorted_set = |len: usize, max: usize| -> Vec<usize> {
            let mut v: Vec<usize> = (0..len).map(|_| i_rng.gen_range(0..max)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let big = sorted_set(4096, 1 << 16);
        let small = sorted_set(256, 1 << 16);
        let acc_cell = std::cell::RefCell::new(Vec::with_capacity(big.len()));
        let intersect_iters = if cfg.quick { 50_000u64 } else { 200_000u64 };
        let mut k = time_kernel("planner_intersect", "query", intersect_iters, {
            let acc = &acc_cell;
            let big = &big;
            let small = &small;
            move || {
                let mut a = acc.borrow_mut();
                a.clear();
                a.extend_from_slice(big);
                intersect_sorted(&mut a, small);
                std::hint::black_box(a.len());
            }
        });
        measure_allocs(&mut k, counter, probe_iters, {
            let acc = &acc_cell;
            let big = &big;
            let small = &small;
            move || {
                let mut a = acc.borrow_mut();
                a.clear();
                a.extend_from_slice(big);
                intersect_sorted(&mut a, small);
                std::hint::black_box(a.len());
            }
        });
        kernels.push(k);
    }

    // --- planner: adaptive multi-attribute resolution on LORM ----------
    // Arity-4 range queries through the selectivity-ordered sequential
    // plan — the path the `--plan=adaptive` figures take per query.
    {
        let mut p_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x14);
        kernels.push(time_kernel("planner_adaptive_probe", "query", probe_q, || {
            let q = workload.random_query(4, QueryMix::Range, &mut p_rng);
            let origin = p_rng.gen_range(0..sim_cfg.nodes);
            std::hint::black_box(
                lorm.query_planned(origin, &q, QueryPlan::Adaptive)
                    .map(|o| o.tally.matches)
                    .unwrap_or(0),
            );
        }));
    }

    // --- bed construction: the phase the BedCache amortizes ------------
    // Each system's stabilized build is timed individually against the
    // standard bed workload, then the built systems are assembled into
    // the shared bed so the pipeline kernels below run against the very
    // beds whose construction was measured.
    let cache = BedCache::new();
    let (bed_workload, bed_seeds) = TestBed::workload_of(&sim_cfg);
    let mut systems = Vec::with_capacity(System::ALL.len());
    for s in System::ALL {
        let name = match s {
            System::Lorm => "build_bed_lorm",
            System::Mercury => "build_bed_mercury",
            System::Sword => "build_bed_sword",
            System::Maan => "build_bed_maan",
        };
        let mut slot = None;
        kernels.push(time_kernel(name, "build", 1, || {
            slot = Some(build_system(s, &bed_workload, &sim_cfg));
        }));
        systems.push(slot.expect("build kernel ran"));
    }
    let bed = TestBed { cfg: sim_cfg, workload: bed_workload, systems, seeds: bed_seeds };
    let clone_iters = if cfg.quick { 3 } else { 2 };
    kernels.push(time_kernel("bed_clone", "build", clone_iters, || {
        std::hint::black_box(bed.snapshot());
    }));
    let _shared = cache.prime(bed);

    // --- figure pipelines, end to end against the warm cache -----------
    // In quick mode the primed bed above *is* the pipelines' bed, so
    // these kernels measure the query phase the cache leaves behind; the
    // churn pipelines clone cached prototypes instead of rebuilding per
    // (rate, system) cell.
    let fig_cfg = ReproConfig { quick: true, json: None, perf: false, ..cfg.clone() };
    for (name, arts) in [
        ("fig4_quick", &[Artifact::Fig4][..]),
        ("fig5_quick", &[Artifact::Fig5][..]),
        ("fig6_quick", &[Artifact::Fig6a, Artifact::Fig6b][..]),
    ] {
        kernels.push(time_kernel(name, "query", 1, || {
            for &a in arts {
                std::hint::black_box(
                    run_artifact_report_cached(a, &fig_cfg, &cache).tables().len(),
                );
            }
        }));
    }
    let chaos_cfg = ReproConfig { chaos: true, ..fig_cfg.clone() };
    kernels.push(time_kernel("chaos_quick", "query", 1, || {
        let c = crate::chaos::run_chaos_cached(&chaos_cfg, &cache);
        std::hint::black_box(c.systems.len());
    }));

    kernels
}

/// Re-run `probe_iters` iterations under the allocation counter and
/// record the mean count. No-op when no counter is installed.
fn measure_allocs(
    k: &mut PerfKernel,
    counter: Option<AllocCounter>,
    probe_iters: u64,
    mut f: impl FnMut(),
) {
    let Some(count) = counter else { return };
    let mut run = || {
        for _ in 0..probe_iters {
            f();
        }
    };
    let total = count(&mut run);
    k.allocs_per_iter = Some(total as f64 / probe_iters as f64);
}

/// Serialize a perf run against the stable `lorm-repro/perf-v2` schema:
/// v1 plus a per-kernel `phase` tag and a top-level `phase_totals` object
/// splitting the run's wall-clock into build vs query milliseconds.
pub fn render_perf_json(cfg: &ReproConfig, kernels: &[PerfKernel]) -> String {
    use sim::report::{json_num, json_str};
    let p = cfg.sim().params();
    let mut out = String::from("{\"schema\":\"lorm-repro/perf-v2\",\"config\":{");
    out.push_str(&format!(
        "\"quick\":{},\"seed\":{},\"shards\":{},\"n\":{},\"m\":{},\"k\":{},\"d\":{}}}",
        cfg.quick, cfg.seed, cfg.shards, p.n, p.m, p.k, p.d
    ));
    let total_ms = |phase: &str| -> f64 {
        kernels.iter().filter(|k| k.phase == phase).map(|k| k.elapsed_ms).sum()
    };
    out.push_str(&format!(
        ",\"phase_totals\":{{\"build_ms\":{},\"query_ms\":{}}}",
        json_num(total_ms("build")),
        json_num(total_ms("query"))
    ));
    out.push_str(",\"kernels\":[");
    for (i, k) in kernels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"phase\":{},\"iters\":{},\"elapsed_ms\":{},\"ops_per_sec\":{},\"allocs_per_iter\":{},\"cache_hit_rate\":{}}}",
            json_str(k.name),
            json_str(k.phase),
            k.iters,
            json_num(k.elapsed_ms),
            json_num(k.ops_per_sec),
            match k.allocs_per_iter {
                Some(a) => json_num(a),
                None => "null".into(),
            },
            match k.cache_hit_rate {
                Some(h) => json_num(h),
                None => "null".into(),
            }
        ));
    }
    out.push_str("]}");
    out
}

/// Per-kernel slowdown factor above which a query-phase run counts as a
/// regression — the same threshold CI's perf-smoke gate applies. Sized
/// to the measured noise envelope of a loaded 1-CPU runner (sustained
/// slow windows inflate even a best-of-N floor by ~1.4x); the
/// regressions this gate exists to catch — losing the bed cache's
/// amortization, or an allocation sneaking back onto the routing fast
/// path — show up at 2x and beyond.
pub const REGRESSION_THRESHOLD: f64 = 1.5;

/// Slightly looser gate for build-phase kernels: bed construction is
/// allocation-bound and the `build_bed_*` kernels finish in single-digit
/// milliseconds, so their run-to-run variance is the widest in the
/// suite. 1.6x still catches any structural regression (the flattening
/// work this gate protects was worth 2x+). CI applies the same split
/// threshold.
pub const BUILD_REGRESSION_THRESHOLD: f64 = 1.6;

/// One kernel's comparison against a committed baseline.
#[derive(Debug, Clone)]
pub struct KernelDelta {
    /// Kernel name (present in both current run and baseline).
    pub name: String,
    /// Baseline elapsed milliseconds.
    pub base_ms: f64,
    /// Current elapsed milliseconds.
    pub current_ms: f64,
    /// `current / base` slowdown factor.
    pub ratio: f64,
    /// Whether the ratio exceeds [`REGRESSION_THRESHOLD`].
    pub regressed: bool,
}

/// Extract `(name, elapsed_ms)` pairs from a committed `BENCH_*.json`
/// perf export (v1 or v2 — both carry `"kernels":[{"name":…,
/// "elapsed_ms":…}]`). A hand-rolled scan, not a JSON parser: the files
/// are machine-written by [`render_perf_json`], so the two keys always
/// appear in order within each kernel object.
pub fn parse_baseline(json: &str) -> Result<Vec<(String, f64)>, String> {
    let kernels_at =
        json.find("\"kernels\":[").ok_or_else(|| "no \"kernels\" array".to_string())?;
    let mut rest = &json[kernels_at..];
    let mut out = Vec::new();
    while let Some(name_at) = rest.find("\"name\":\"") {
        rest = &rest[name_at + 8..];
        let name_end = rest.find('"').ok_or_else(|| "unterminated kernel name".to_string())?;
        let name = rest[..name_end].to_string();
        let ms_at = rest
            .find("\"elapsed_ms\":")
            .ok_or_else(|| format!("kernel {name} has no elapsed_ms"))?;
        rest = &rest[ms_at + 13..];
        let ms_end =
            rest.find([',', '}']).ok_or_else(|| format!("unterminated elapsed_ms for {name}"))?;
        let ms: f64 =
            rest[..ms_end].trim().parse().map_err(|e| format!("bad elapsed_ms for {name}: {e}"))?;
        out.push((name, ms));
    }
    if out.is_empty() {
        return Err("baseline lists no kernels".to_string());
    }
    Ok(out)
}

/// Compare the current run against a parsed baseline. Only kernels
/// present in both are compared — the same rule CI applies, so renamed
/// or newly added kernels never trip the gate.
pub fn diff_baseline(current: &[PerfKernel], baseline: &[(String, f64)]) -> Vec<KernelDelta> {
    let mut out = Vec::new();
    for k in current {
        let Some((_, base_ms)) = baseline.iter().find(|(n, _)| n == k.name) else { continue };
        let ratio = k.elapsed_ms / base_ms.max(1e-9);
        let threshold =
            if k.phase == "build" { BUILD_REGRESSION_THRESHOLD } else { REGRESSION_THRESHOLD };
        out.push(KernelDelta {
            name: k.name.to_string(),
            base_ms: *base_ms,
            current_ms: k.elapsed_ms,
            ratio,
            regressed: ratio > threshold,
        });
    }
    out
}

/// Render a baseline comparison as a markdown table.
pub fn render_delta_table(path: &std::path::Path, deltas: &[KernelDelta]) -> String {
    let mut out = format!("## Baseline comparison vs {}\n\n", path.display());
    out.push_str("| kernel | baseline (ms) | current (ms) | ratio | status |\n");
    out.push_str("|---|---|---|---|---|\n");
    for d in deltas {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.2}x | {} |\n",
            d.name,
            d.base_ms,
            d.current_ms,
            d.ratio,
            if d.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    out
}

/// Render the perf run as a markdown table for terminal output.
pub fn render_perf_table(kernels: &[PerfKernel]) -> String {
    let mut out = String::from("## Performance kernels\n\n");
    out.push_str("| kernel | phase | iters | elapsed (ms) | ops/sec | allocs/iter | hit rate |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for k in kernels {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.0} | {} | {} |\n",
            k.name,
            k.phase,
            k.iters,
            k.elapsed_ms,
            k.ops_per_sec,
            match k.allocs_per_iter {
                Some(a) => format!("{a:.2}"),
                None => "-".into(),
            },
            match k.cache_hit_rate {
                Some(h) => format!("{:.1}%", h * 100.0),
                None => "-".into(),
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ReproConfig {
        ReproConfig { quick: true, seed: 7, ..ReproConfig::default() }
    }

    fn sample_kernels() -> Vec<PerfKernel> {
        vec![
            PerfKernel {
                name: "chord_route_stats",
                phase: "query",
                iters: 100,
                elapsed_ms: 2.5,
                ops_per_sec: 40_000.0,
                allocs_per_iter: Some(0.0),
                cache_hit_rate: None,
            },
            PerfKernel {
                name: "build_bed_lorm",
                phase: "build",
                iters: 1,
                elapsed_ms: 40.0,
                ops_per_sec: 25.0,
                allocs_per_iter: None,
                cache_hit_rate: None,
            },
            PerfKernel {
                name: "fig4_quick",
                phase: "query",
                iters: 1,
                elapsed_ms: 150.0,
                ops_per_sec: 6.7,
                allocs_per_iter: None,
                cache_hit_rate: Some(0.875),
            },
        ]
    }

    #[test]
    fn perf_json_has_schema_config_and_kernels() {
        let cfg = tiny_cfg();
        let j = render_perf_json(&cfg, &sample_kernels());
        assert!(j.starts_with("{\"schema\":\"lorm-repro/perf-v2\",\"config\":{"), "{j}");
        assert!(j.contains("\"quick\":true"));
        assert!(j.contains("\"phase_totals\":{\"build_ms\":40,\"query_ms\":152.5}"), "{j}");
        assert!(j.contains("\"name\":\"chord_route_stats\",\"phase\":\"query\",\"iters\":100"));
        assert!(j.contains("\"name\":\"build_bed_lorm\",\"phase\":\"build\""));
        assert!(j.contains("\"allocs_per_iter\":0"));
        assert!(j.contains("\"allocs_per_iter\":null"));
        assert!(j.contains("\"cache_hit_rate\":0.875"));
        assert!(j.contains("\"cache_hit_rate\":null"));
        assert!(j.ends_with("]}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn perf_table_lists_every_kernel() {
        let kernels = vec![PerfKernel {
            name: "cycloid_route_stats",
            phase: "query",
            iters: 10,
            elapsed_ms: 1.0,
            ops_per_sec: 10_000.0,
            allocs_per_iter: None,
            cache_hit_rate: Some(0.5),
        }];
        let t = render_perf_table(&kernels);
        assert!(t.contains("cycloid_route_stats"));
        assert!(t.contains("| query |"), "phase column present: {t}");
        assert!(t.contains("| - |"), "unmeasured allocs render as a dash: {t}");
        assert!(t.contains("50.0%"), "hit rate renders as a percentage: {t}");
    }

    #[test]
    fn route_kernels_time_and_report() {
        // A minimal end-to-end run of the routing kernels only would still
        // build full networks; instead exercise the helper directly.
        let k = time_kernel("probe", "query", 50, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(k.iters, 50);
        assert!(k.elapsed_ms >= 0.0);
        assert!(k.ops_per_sec > 0.0);
        assert!(k.allocs_per_iter.is_none());
    }

    #[test]
    fn baseline_roundtrips_through_render_and_parse() {
        let cfg = tiny_cfg();
        let kernels = sample_kernels();
        let j = render_perf_json(&cfg, &kernels);
        let base = parse_baseline(&j).expect("rendered JSON parses as baseline");
        assert_eq!(base.len(), kernels.len());
        for (k, (name, ms)) in kernels.iter().zip(&base) {
            assert_eq!(k.name, name);
            assert!((k.elapsed_ms - ms).abs() < 1e-9, "{name}: {ms}");
        }
    }

    #[test]
    fn baseline_parse_rejects_garbage() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"kernels\":[]}").is_err());
        assert!(parse_baseline("{\"kernels\":[{\"name\":\"x\"}]}").is_err());
    }

    #[test]
    fn diff_flags_only_kernels_past_threshold() {
        let kernels = sample_kernels();
        // fig4_quick regresses 2x; chord_route_stats improves; the bed
        // kernel sits at 1.54x — past the query gate but inside the
        // looser build gate; the retired kernel is absent from the
        // baseline and must be skipped.
        let base = vec![
            ("chord_route_stats".to_string(), 5.0),
            ("build_bed_lorm".to_string(), 26.0),
            ("fig4_quick".to_string(), 75.0),
            ("retired_kernel".to_string(), 1.0),
        ];
        let deltas = diff_baseline(&kernels, &base);
        assert_eq!(deltas.len(), 3, "only kernels present in both are compared");
        let fig4 = deltas.iter().find(|d| d.name == "fig4_quick").unwrap();
        assert!(fig4.regressed, "2x slowdown trips the {REGRESSION_THRESHOLD}x gate");
        let bed = deltas.iter().find(|d| d.name == "build_bed_lorm").unwrap();
        assert!(bed.ratio > REGRESSION_THRESHOLD && bed.ratio < BUILD_REGRESSION_THRESHOLD);
        assert!(!bed.regressed, "build kernels gate at {BUILD_REGRESSION_THRESHOLD}x, not 1.25x");
        let route = deltas.iter().find(|d| d.name == "chord_route_stats").unwrap();
        assert!(!route.regressed);
        assert!(route.ratio < 1.0);
        let t = render_delta_table(std::path::Path::new("BENCH.json"), &deltas);
        assert!(t.contains("REGRESSED"), "{t}");
        assert!(t.contains("| ok |"), "{t}");
    }
}
