//! Regenerate the paper's tables and figures. See `bench` crate docs.
#![allow(clippy::print_stdout)] // terminal output is this binary's UI

use bench::{parse_args, render_json, run_artifact_report_cached, ArtifactRun};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation (and the bytes moving in each direction)
/// so `repro perf` can report allocations-per-lookup and `repro scale`
/// can report live bytes-per-node. Counting is a handful of relaxed
/// atomic increments; the `System` allocator does the real work.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Monotonic total bytes ever allocated (never decremented; live bytes
/// are `ALLOC_BYTES - FREED_BYTES`).
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Monotonic total bytes ever freed.
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation and deallocation verbatim to `System`;
// the only addition is relaxed counter bumps, which cannot violate any
// allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        FREED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs(f: &mut dyn FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn heap_bytes() -> (u64, u64) {
    (ALLOC_BYTES.load(Ordering::Relaxed), FREED_BYTES.load(Ordering::Relaxed))
}

fn main() {
    let (cfg, artifacts) = match parse_args(std::env::args().skip(1)) {
        Ok(plan) => plan,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    sim::experiments::set_default_shards(cfg.shards);
    if cfg.perf {
        println!(
            "# LORM perf baseline — {} mode (seed {})\n",
            if cfg.quick { "quick" } else { "full (paper §V)" },
            cfg.seed
        );
        let kernels = bench::perf::run_perf(&cfg, Some(count_allocs));
        println!("{}", bench::perf::render_perf_table(&kernels));
        if let Some(path) = &cfg.json {
            let json = bench::perf::render_perf_json(&cfg, &kernels);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("(perf metrics written to {})", path.display());
        }
        if let Some(path) = &cfg.baseline {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("failed to read baseline {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            let base = match bench::perf::parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("failed to parse baseline {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            let deltas = bench::perf::diff_baseline(&kernels, &base);
            println!("{}", bench::perf::render_delta_table(path, &deltas));
            if deltas.iter().any(|d| d.regressed) {
                eprintln!(
                    "perf regression: at least one kernel slowed past its gate \
                     ({:.0}% query / {:.0}% build) vs {}",
                    (bench::perf::REGRESSION_THRESHOLD - 1.0) * 100.0,
                    (bench::perf::BUILD_REGRESSION_THRESHOLD - 1.0) * 100.0,
                    path.display()
                );
                std::process::exit(1);
            }
        }
        return;
    }
    if cfg.scale {
        println!(
            "# LORM scale sweep — {} mode (seed {})\n",
            if cfg.quick { "quick (1k-50k)" } else { "full (1k-1M)" },
            cfg.seed
        );
        let run = bench::scale::run_scale(&cfg, Some(heap_bytes));
        println!("{}", bench::scale::render_scale_table(&run));
        if let Some(path) = &cfg.json {
            let json = bench::scale::render_scale_json(&cfg, &run);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("(scale metrics written to {})", path.display());
        }
        if run.checks.iter().any(|c| !c.ok) {
            eprintln!("scale sweep: at least one growth check failed (see table above)");
            std::process::exit(1);
        }
        // Same per-kernel wall-clock gate the perf mode applies: the
        // scale export shares the perf-v2 kernel array, so a committed
        // BENCH_scale_quick.json diffs with the identical machinery.
        if let Some(path) = &cfg.baseline {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("failed to read baseline {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            let base = match bench::perf::parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("failed to parse baseline {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            let deltas = bench::perf::diff_baseline(&run.kernels, &base);
            println!("{}", bench::perf::render_delta_table(path, &deltas));
            if deltas.iter().any(|d| d.regressed) {
                eprintln!(
                    "scale regression: at least one kernel slowed past its gate \
                     ({:.0}% query / {:.0}% build) vs {}",
                    (bench::perf::REGRESSION_THRESHOLD - 1.0) * 100.0,
                    (bench::perf::BUILD_REGRESSION_THRESHOLD - 1.0) * 100.0,
                    path.display()
                );
                std::process::exit(1);
            }
        }
        return;
    }
    if cfg.durability {
        println!(
            "# LORM durability sweep — {} mode (seed {})\n",
            if cfg.quick { "quick" } else { "full (paper §V)" },
            cfg.seed
        );
        let d = bench::durability::run_durability(&cfg);
        println!("{d}");
        if let Some(path) = &cfg.json {
            let json = bench::durability::render_durability_json(&cfg, &d);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("(durability metrics written to {})", path.display());
        }
        let violations = d.k_monotonicity_violations();
        if !violations.is_empty() {
            eprintln!(
                "durability sweep: data loss was not monotone in the replication \
                 degree ({} violation(s), see notes above)",
                violations.len()
            );
            std::process::exit(1);
        }
        if d.theory_failures() > 0 {
            eprintln!(
                "durability sweep: {} churn theory check(s) fell outside their \
                 tolerance bands (see table above)",
                d.theory_failures()
            );
            std::process::exit(1);
        }
        return;
    }
    if cfg.chaos {
        println!(
            "# LORM chaos sweep — {} mode (seed {})\n",
            if cfg.quick { "quick" } else { "full (paper §V)" },
            cfg.seed
        );
        let c = bench::chaos::run_chaos(&cfg);
        println!("{c}");
        if let Some(path) = &cfg.json {
            let json = bench::chaos::render_chaos_json(&cfg, &c);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("(chaos metrics written to {})", path.display());
        }
        return;
    }
    println!(
        "# LORM reproduction — {} mode (seed {})\n",
        if cfg.quick { "quick" } else { "full (paper §V)" },
        cfg.seed
    );
    // One cache for the whole invocation: artifacts sharing a bed
    // configuration (fig4 + fig5 + t410 at the same scale, say) build it
    // once and reuse it.
    let cache = sim::BedCache::new();
    let mut runs: Vec<ArtifactRun> = Vec::with_capacity(artifacts.len());
    for a in artifacts {
        let started = std::time::Instant::now();
        let report = run_artifact_report_cached(a, &cfg, &cache);
        let elapsed = started.elapsed();
        println!("{report}");
        println!("(elapsed: {elapsed:.1?})\n");
        runs.push(ArtifactRun { artifact: a, report, elapsed_ms: elapsed.as_secs_f64() * 1e3 });
    }
    if let Some(path) = &cfg.json {
        let json = render_json(&cfg, &runs);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("(metrics written to {})", path.display());
    }
}
