//! Regenerate the paper's tables and figures. See `bench` crate docs.

use bench::{parse_args, run_artifact};

fn main() {
    let (cfg, artifacts) = match parse_args(std::env::args().skip(1)) {
        Ok(plan) => plan,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    println!(
        "# LORM reproduction — {} mode (seed {})\n",
        if cfg.quick { "quick" } else { "full (paper §V)" },
        cfg.seed
    );
    for a in artifacts {
        let started = std::time::Instant::now();
        let report = run_artifact(a, &cfg);
        println!("{report}");
        println!("(elapsed: {:.1?})\n", started.elapsed());
    }
}
