//! Regenerate the paper's tables and figures. See `bench` crate docs.
#![allow(clippy::print_stdout)] // terminal output is this binary's UI

use bench::{parse_args, render_json, run_artifact_report, ArtifactRun};

fn main() {
    let (cfg, artifacts) = match parse_args(std::env::args().skip(1)) {
        Ok(plan) => plan,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    sim::experiments::set_default_shards(cfg.shards);
    println!(
        "# LORM reproduction — {} mode (seed {})\n",
        if cfg.quick { "quick" } else { "full (paper §V)" },
        cfg.seed
    );
    let mut runs: Vec<ArtifactRun> = Vec::with_capacity(artifacts.len());
    for a in artifacts {
        let started = std::time::Instant::now();
        let report = run_artifact_report(a, &cfg);
        let elapsed = started.elapsed();
        println!("{report}");
        println!("(elapsed: {elapsed:.1?})\n");
        runs.push(ArtifactRun { artifact: a, report, elapsed_ms: elapsed.as_secs_f64() * 1e3 });
    }
    if let Some(path) = &cfg.json {
        let json = render_json(&cfg, &runs);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("(metrics written to {})", path.display());
    }
}
