//! `repro scale` — the million-node scaling sweep.
//!
//! Sweeps bed construction across four orders of magnitude
//! (n = 1k → 1M; quick mode stops at 50k for CI) and measures, per
//! overlay and size, the three costs ROADMAP's scale item asks for:
//!
//! * **memory footprint** — live heap bytes per node, via the counting
//!   global allocator the `repro` binary installs (the library forbids
//!   `unsafe`, so the byte totals arrive through a [`BytesProbe`]
//!   function pointer, exactly like `perf`'s [`crate::perf::AllocCounter`]);
//! * **build throughput** — wall-clock nodes/second through the sorted
//!   bulk constructors (the O(n²) per-join path this PR retired would be
//!   infeasible at 10^6);
//! * **query throughput** — routed lookups/second against the built
//!   overlay, with mean hop counts.
//!
//! On top of the raw kernels the sweep runs theorem-style growth checks:
//! Chord and Mercury mean hops must grow as O(log n) (the per-size
//! `hops / log2 n` ratios stay within a [`HOP_GROWTH_BAND`] band), and
//! Cycloid's node degree must stay bounded by a constant
//! ([`DEGREE_BOUND`]) independent of n — the paper's §IV claims,
//! validated at a thousand times the paper's scale.
//!
//! Results are emitted in the same `lorm-repro/perf-v2` schema as
//! `repro perf` (kernels with `phase`/`iters`/`elapsed_ms`/`ops_per_sec`)
//! plus two scale-specific top-level arrays: `"scale"` (one row per
//! system × size) and `"growth_checks"`.

use crate::perf::PerfKernel;
use crate::ReproConfig;
use baselines::{Mercury, MercuryConfig};
use chord::{Chord, ChordConfig};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::Overlay;
use grid_resource::{AttrId, AttributeSpace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Monotonic heap byte totals `(allocated, freed)` since process start.
/// Installed by binaries with a counting global allocator; `None` reports
/// `bytes_per_node` as unmeasured.
pub type BytesProbe = fn() -> (u64, u64);

/// Maximum allowed spread of the per-size `mean_hops / log2 n` ratio for
/// an O(log n) overlay: `max_ratio / min_ratio` across the sweep must not
/// exceed this. A truly logarithmic overlay holds the ratio constant
/// (Chord's is ~0.5); anything polynomial blows past the band within one
/// order of magnitude.
pub const HOP_GROWTH_BAND: f64 = 1.5;

/// Constant bound on Cycloid node degree, independent of n. Cycloid
/// maintains seven link kinds (inside/outside leaf pairs, one cubical,
/// two cyclic neighbors); 16 leaves headroom for dense clusters while
/// still refuting any degree that grows with n.
pub const DEGREE_BOUND: usize = 16;

/// Number of Mercury hubs in the sweep (attributes in the synthetic
/// space). Two is the minimum that exercises multi-hub construction;
/// each hub is a full n-node Chord ring, so the Mercury column costs
/// twice the Chord column. Typed `u32` to match `AttrId`'s raw form, so
/// hub-id arithmetic widens rather than truncates.
pub const MERCURY_HUBS: u32 = 2;

/// One system × size measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Which overlay/system (`"chord"`, `"cycloid"`, `"mercury"`).
    pub system: &'static str,
    /// Live nodes built.
    pub n: usize,
    /// Wall-clock milliseconds to build the overlay (bulk path).
    pub build_ms: f64,
    /// Net live heap bytes per node after construction, when a probe was
    /// installed. Mercury reports bytes per physical node across all hubs.
    pub bytes_per_node: Option<f64>,
    /// Routed lookups per second against the built overlay.
    pub query_ops_per_sec: f64,
    /// Mean hops over the routed lookups.
    pub mean_hops: f64,
    /// Maximum distinct outlinks over a deterministic node sample (for
    /// Mercury: within one hub).
    pub max_outlinks: usize,
}

/// One theorem-style growth check over the sweep.
#[derive(Debug, Clone)]
pub struct GrowthCheck {
    /// Which system the check covers.
    pub system: &'static str,
    /// What is being claimed (stable, machine-readable).
    pub claim: &'static str,
    /// The per-size statistic: `(n, mean_hops / log2 n)` for hop-growth
    /// checks, `(n, max_outlinks)` for the degree check.
    pub per_size: Vec<(usize, f64)>,
    /// The observed spread: `max/min` ratio for hop growth, the maximum
    /// statistic for the degree bound.
    pub observed: f64,
    /// The allowed limit ([`HOP_GROWTH_BAND`] or [`DEGREE_BOUND`]).
    pub limit: f64,
    /// Whether the observation stayed within the limit.
    pub ok: bool,
}

/// A completed scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// The sizes swept.
    pub sizes: Vec<usize>,
    /// One point per system × size.
    pub points: Vec<ScalePoint>,
    /// The perf-v2 kernels (one build + one query kernel per point).
    pub kernels: Vec<PerfKernel>,
    /// The growth checks.
    pub checks: Vec<GrowthCheck>,
}

/// The sweep sizes for a configuration: the full sweep covers four
/// orders of magnitude; quick mode stops at 50k so the CI smoke job
/// finishes in seconds.
pub fn sweep_sizes(quick: bool) -> &'static [usize] {
    if quick {
        &[1_000, 10_000, 50_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    }
}

/// The smallest Cycloid dimension whose capacity `d·2^d` holds `n` nodes.
pub fn min_dimension(n: usize) -> u8 {
    let mut d: u8 = 3;
    while (d as usize) * (1usize << d) < n {
        d += 1;
    }
    d
}

/// Human-readable short label for a sweep size (`1_000` → `"n1k"`).
pub fn size_label(n: usize) -> &'static str {
    match n {
        64 => "n64",
        256 => "n256",
        1_000 => "n1k",
        10_000 => "n10k",
        50_000 => "n50k",
        100_000 => "n100k",
        1_000_000 => "n1m",
        _ => "n_other",
    }
}

/// Static kernel name for a (system, phase, size) cell — perf-v2 kernel
/// names are `&'static str`, so the cross product is enumerated.
fn kernel_name(system: &'static str, phase: &'static str, n: usize) -> &'static str {
    macro_rules! table {
        ($(($sys:literal, $ph:literal, $n:literal, $name:literal)),* $(,)?) => {
            match (system, phase, n) {
                $(($sys, $ph, $n) => $name,)*
                _ => "scale_other",
            }
        };
    }
    table![
        ("chord", "build", 64, "chord_build_n64"),
        ("chord", "query", 64, "chord_query_n64"),
        ("chord", "build", 256, "chord_build_n256"),
        ("chord", "query", 256, "chord_query_n256"),
        ("chord", "build", 1_000, "chord_build_n1k"),
        ("chord", "query", 1_000, "chord_query_n1k"),
        ("chord", "build", 10_000, "chord_build_n10k"),
        ("chord", "query", 10_000, "chord_query_n10k"),
        ("chord", "build", 50_000, "chord_build_n50k"),
        ("chord", "query", 50_000, "chord_query_n50k"),
        ("chord", "build", 100_000, "chord_build_n100k"),
        ("chord", "query", 100_000, "chord_query_n100k"),
        ("chord", "build", 1_000_000, "chord_build_n1m"),
        ("chord", "query", 1_000_000, "chord_query_n1m"),
        ("cycloid", "build", 64, "cycloid_build_n64"),
        ("cycloid", "query", 64, "cycloid_query_n64"),
        ("cycloid", "build", 256, "cycloid_build_n256"),
        ("cycloid", "query", 256, "cycloid_query_n256"),
        ("cycloid", "build", 1_000, "cycloid_build_n1k"),
        ("cycloid", "query", 1_000, "cycloid_query_n1k"),
        ("cycloid", "build", 10_000, "cycloid_build_n10k"),
        ("cycloid", "query", 10_000, "cycloid_query_n10k"),
        ("cycloid", "build", 50_000, "cycloid_build_n50k"),
        ("cycloid", "query", 50_000, "cycloid_query_n50k"),
        ("cycloid", "build", 100_000, "cycloid_build_n100k"),
        ("cycloid", "query", 100_000, "cycloid_query_n100k"),
        ("cycloid", "build", 1_000_000, "cycloid_build_n1m"),
        ("cycloid", "query", 1_000_000, "cycloid_query_n1m"),
        ("mercury", "build", 64, "mercury_build_n64"),
        ("mercury", "query", 64, "mercury_query_n64"),
        ("mercury", "build", 256, "mercury_build_n256"),
        ("mercury", "query", 256, "mercury_query_n256"),
        ("mercury", "build", 1_000, "mercury_build_n1k"),
        ("mercury", "query", 1_000, "mercury_query_n1k"),
        ("mercury", "build", 10_000, "mercury_build_n10k"),
        ("mercury", "query", 10_000, "mercury_query_n10k"),
        ("mercury", "build", 50_000, "mercury_build_n50k"),
        ("mercury", "query", 50_000, "mercury_query_n50k"),
        ("mercury", "build", 100_000, "mercury_build_n100k"),
        ("mercury", "query", 100_000, "mercury_query_n100k"),
        ("mercury", "build", 1_000_000, "mercury_build_n1m"),
        ("mercury", "query", 1_000_000, "mercury_query_n1m"),
    ]
}

fn net_live_bytes(probe: Option<BytesProbe>) -> Option<i128> {
    probe.map(|p| {
        let (alloc, freed) = p();
        alloc as i128 - freed as i128
    })
}

fn bytes_per_node(before: Option<i128>, after: Option<i128>, n: usize) -> Option<f64> {
    match (before, after) {
        (Some(b), Some(a)) => Some(((a - b).max(0)) as f64 / n as f64),
        _ => None,
    }
}

/// Maximum distinct outlinks over a deterministic sample of live nodes
/// (every `len/512`-th node — sampling keeps the 1M sweep out of O(n)
/// neighbor enumeration without losing the degree bound's witness).
fn max_outlinks_sampled<O: Overlay>(net: &O) -> usize {
    let live = net.live_nodes();
    let step = (live.len() / 512).max(1);
    live.iter().step_by(step).map(|&i| net.outlinks(i).unwrap_or(0)).max().unwrap_or(0)
}

struct QueryMeasure {
    ops_per_sec: f64,
    mean_hops: f64,
    elapsed_ms: f64,
}

fn measure_queries(
    iters: u64,
    mut route_one: impl FnMut(&mut SmallRng) -> usize,
    seed: u64,
) -> QueryMeasure {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut hops_total: u64 = 0;
    let started = Instant::now();
    for _ in 0..iters {
        hops_total += route_one(&mut rng) as u64;
    }
    let secs = started.elapsed().as_secs_f64();
    QueryMeasure {
        ops_per_sec: iters as f64 / secs.max(1e-12),
        mean_hops: hops_total as f64 / iters.max(1) as f64,
        elapsed_ms: secs * 1e3,
    }
}

/// Run the full sweep at the configuration's scale. See [`run_scale_at`]
/// for the parameterized core (used by tests at tiny sizes).
pub fn run_scale(cfg: &ReproConfig, bytes: Option<BytesProbe>) -> ScaleRun {
    let iters = if cfg.quick { 2_000 } else { 4_000 };
    run_scale_at(cfg.seed, sweep_sizes(cfg.quick), iters, bytes)
}

/// The sweep core: for each size, build each overlay through the bulk
/// path (timed, with the heap delta attributed to it), drive `route_iters`
/// random lookups, then drop it before the next build so heap deltas
/// never overlap.
pub fn run_scale_at(
    seed: u64,
    sizes: &[usize],
    route_iters: u64,
    bytes: Option<BytesProbe>,
) -> ScaleRun {
    let mut points: Vec<ScalePoint> = Vec::new();
    let mut kernels: Vec<PerfKernel> = Vec::new();
    let push_point = |points: &mut Vec<ScalePoint>,
                      kernels: &mut Vec<PerfKernel>,
                      p: ScalePoint,
                      query_ms: f64| {
        kernels.push(PerfKernel {
            name: kernel_name(p.system, "build", p.n),
            phase: "build",
            iters: p.n as u64,
            elapsed_ms: p.build_ms,
            ops_per_sec: p.n as f64 / (p.build_ms / 1e3).max(1e-12),
            allocs_per_iter: None,
            cache_hit_rate: None,
        });
        kernels.push(PerfKernel {
            name: kernel_name(p.system, "query", p.n),
            phase: "query",
            iters: route_iters,
            elapsed_ms: query_ms,
            ops_per_sec: p.query_ops_per_sec,
            allocs_per_iter: None,
            cache_hit_rate: None,
        });
        points.push(p);
    };

    for &n in sizes {
        // --- Chord ---------------------------------------------------
        let before = net_live_bytes(bytes);
        let started = Instant::now();
        let chord = Chord::build(n, ChordConfig { seed, ..ChordConfig::default() });
        let build_ms = started.elapsed().as_secs_f64() * 1e3;
        let bpn = bytes_per_node(before, net_live_bytes(bytes), n);
        let q = measure_queries(
            route_iters,
            |rng| {
                // lint:allow(panic-hygiene): built above with n >= 1 live nodes.
                let from = chord.random_node(rng).expect("live node");
                let key: u64 = rng.gen();
                chord.route_stats(from, key).map(|s| s.hops).unwrap_or(0)
            },
            seed ^ (n as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        let max_deg = max_outlinks_sampled(&chord);
        push_point(
            &mut points,
            &mut kernels,
            ScalePoint {
                system: "chord",
                n,
                build_ms,
                bytes_per_node: bpn,
                query_ops_per_sec: q.ops_per_sec,
                mean_hops: q.mean_hops,
                max_outlinks: max_deg,
            },
            q.elapsed_ms,
        );
        drop(chord);

        // --- Cycloid (smallest dimension that holds n) ----------------
        let d = min_dimension(n);
        let before = net_live_bytes(bytes);
        let started = Instant::now();
        let cycloid = Cycloid::build(n, CycloidConfig { dimension: d, seed });
        let build_ms = started.elapsed().as_secs_f64() * 1e3;
        let bpn = bytes_per_node(before, net_live_bytes(bytes), n);
        let q = measure_queries(
            route_iters,
            |rng| {
                // lint:allow(panic-hygiene): built above with n >= 1 live nodes.
                let from = cycloid.random_node(rng).expect("live node");
                let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
                cycloid.route_stats(from, key).map(|s| s.hops).unwrap_or(0)
            },
            seed ^ (n as u64).wrapping_mul(0xC0FFEE),
        );
        let max_deg = max_outlinks_sampled(&cycloid);
        push_point(
            &mut points,
            &mut kernels,
            ScalePoint {
                system: "cycloid",
                n,
                build_ms,
                bytes_per_node: bpn,
                query_ops_per_sec: q.ops_per_sec,
                mean_hops: q.mean_hops,
                max_outlinks: max_deg,
            },
            q.elapsed_ms,
        );
        drop(cycloid);

        // --- Mercury (MERCURY_HUBS full-n Chord hubs) -----------------
        let space = AttributeSpace::synthetic(MERCURY_HUBS as usize, 1.0, 100.0)
            // lint:allow(panic-hygiene): the synthetic range 1..100 is valid.
            .expect("valid space");
        let before = net_live_bytes(bytes);
        let started = Instant::now();
        let mercury = Mercury::new(n, &space, MercuryConfig { seed });
        let build_ms = started.elapsed().as_secs_f64() * 1e3;
        let bpn = bytes_per_node(before, net_live_bytes(bytes), n);
        let q = measure_queries(
            route_iters,
            |rng| {
                let hub = mercury.hub(AttrId(rng.gen_range(0..MERCURY_HUBS))).net();
                // lint:allow(panic-hygiene): hubs were built with n >= 1 live nodes.
                let from = hub.random_node(rng).expect("live node");
                let key: u64 = rng.gen();
                hub.route_stats(from, key).map(|s| s.hops).unwrap_or(0)
            },
            seed ^ (n as u64).wrapping_mul(0x9E3779B9),
        );
        let max_deg = (0..MERCURY_HUBS)
            .map(|h| max_outlinks_sampled(mercury.hub(AttrId(h)).net()))
            .max()
            .unwrap_or(0);
        push_point(
            &mut points,
            &mut kernels,
            ScalePoint {
                system: "mercury",
                n,
                build_ms,
                bytes_per_node: bpn,
                query_ops_per_sec: q.ops_per_sec,
                mean_hops: q.mean_hops,
                max_outlinks: max_deg,
            },
            q.elapsed_ms,
        );
        drop(mercury);
    }

    let checks = growth_checks(&points);
    ScaleRun { sizes: sizes.to_vec(), points, kernels, checks }
}

/// Derive the growth checks from a sweep's points: O(log n) hop growth
/// for Chord and Mercury, constant degree for Cycloid.
pub fn growth_checks(points: &[ScalePoint]) -> Vec<GrowthCheck> {
    let mut out = Vec::new();
    for system in ["chord", "mercury"] {
        let per_size: Vec<(usize, f64)> = points
            .iter()
            .filter(|p| p.system == system)
            .map(|p| (p.n, p.mean_hops / (p.n as f64).log2()))
            .collect();
        let max = per_size.iter().map(|&(_, r)| r).fold(f64::NEG_INFINITY, f64::max);
        let min = per_size.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
        let observed = if min > 0.0 { max / min } else { f64::INFINITY };
        out.push(GrowthCheck {
            system,
            claim: "mean_hops_O_log_n",
            ok: !per_size.is_empty() && observed <= HOP_GROWTH_BAND,
            per_size,
            observed,
            limit: HOP_GROWTH_BAND,
        });
    }
    let per_size: Vec<(usize, f64)> = points
        .iter()
        .filter(|p| p.system == "cycloid")
        .map(|p| (p.n, p.max_outlinks as f64))
        .collect();
    let observed = per_size.iter().map(|&(_, d)| d).fold(0.0, f64::max);
    out.push(GrowthCheck {
        system: "cycloid",
        claim: "constant_degree",
        ok: !per_size.is_empty() && observed <= DEGREE_BOUND as f64,
        per_size,
        observed,
        limit: DEGREE_BOUND as f64,
    });
    out
}

/// Serialize the sweep against the `lorm-repro/perf-v2` schema: the
/// standard kernel array and phase split, plus two scale-specific
/// top-level arrays (`"scale"`, `"growth_checks"`).
pub fn render_scale_json(cfg: &ReproConfig, run: &ScaleRun) -> String {
    use sim::report::{json_num, json_str};
    let mut out = String::from("{\"schema\":\"lorm-repro/perf-v2\",\"config\":{");
    out.push_str(&format!(
        "\"quick\":{},\"seed\":{},\"shards\":{},\"sizes\":[{}]}}",
        cfg.quick,
        cfg.seed,
        cfg.shards,
        run.sizes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(",")
    ));
    let total_ms = |phase: &str| -> f64 {
        run.kernels.iter().filter(|k| k.phase == phase).map(|k| k.elapsed_ms).sum()
    };
    out.push_str(&format!(
        ",\"phase_totals\":{{\"build_ms\":{},\"query_ms\":{}}}",
        json_num(total_ms("build")),
        json_num(total_ms("query"))
    ));
    out.push_str(",\"kernels\":[");
    for (i, k) in run.kernels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"phase\":{},\"iters\":{},\"elapsed_ms\":{},\"ops_per_sec\":{},\"allocs_per_iter\":null}}",
            json_str(k.name),
            json_str(k.phase),
            k.iters,
            json_num(k.elapsed_ms),
            json_num(k.ops_per_sec),
        ));
    }
    out.push_str("],\"scale\":[");
    for (i, p) in run.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"system\":{},\"n\":{},\"build_ms\":{},\"bytes_per_node\":{},\"query_ops_per_sec\":{},\"mean_hops\":{},\"max_outlinks\":{}}}",
            json_str(p.system),
            p.n,
            json_num(p.build_ms),
            match p.bytes_per_node {
                Some(b) => json_num(b),
                None => "null".into(),
            },
            json_num(p.query_ops_per_sec),
            json_num(p.mean_hops),
            p.max_outlinks,
        ));
    }
    out.push_str("],\"growth_checks\":[");
    for (i, c) in run.checks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let stats = c
            .per_size
            .iter()
            .map(|&(n, v)| format!("[{},{}]", n, json_num(v)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"system\":{},\"claim\":{},\"per_size\":[{}],\"observed\":{},\"limit\":{},\"ok\":{}}}",
            json_str(c.system),
            json_str(c.claim),
            stats,
            json_num(c.observed),
            json_num(c.limit),
            c.ok,
        ));
    }
    out.push_str("]}");
    out
}

/// Render the sweep as markdown tables for terminal output (and for
/// pasting into EXPERIMENTS.md).
pub fn render_scale_table(run: &ScaleRun) -> String {
    let mut out = String::from("## Scale sweep\n\n");
    out.push_str(
        "| system | n | build (ms) | build nodes/s | bytes/node | query ops/s | mean hops | max outlinks |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for p in &run.points {
        let build_nps = p.n as f64 / (p.build_ms / 1e3).max(1e-12);
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.0} | {} | {:.0} | {:.2} | {} |\n",
            p.system,
            p.n,
            p.build_ms,
            build_nps,
            match p.bytes_per_node {
                Some(b) => format!("{b:.0}"),
                None => "-".into(),
            },
            p.query_ops_per_sec,
            p.mean_hops,
            p.max_outlinks,
        ));
    }
    out.push_str("\n## Growth checks\n\n");
    out.push_str("| system | claim | per-size statistic | observed | limit | status |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for c in &run.checks {
        let stats = c
            .per_size
            .iter()
            .map(|&(n, v)| format!("{}:{:.2}", size_label(n), v))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.2} | {} |\n",
            c.system,
            c.claim,
            stats,
            c.observed,
            c.limit,
            if c.ok { "ok" } else { "FAILED" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_dimension_covers_the_sweep() {
        assert_eq!(min_dimension(1_000), 8); // 8·256 = 2048
        assert_eq!(min_dimension(10_000), 10); // 10·1024 = 10240
        assert_eq!(min_dimension(50_000), 13); // 13·8192 = 106496
        assert_eq!(min_dimension(100_000), 13);
        assert_eq!(min_dimension(1_000_000), 16); // 16·65536 = 1048576
        for n in [1_000, 10_000, 50_000, 100_000, 1_000_000] {
            let d = min_dimension(n) as usize;
            assert!(d * (1 << d) >= n, "d = {d} cannot hold {n}");
        }
    }

    #[test]
    fn kernel_names_are_static_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for sys in ["chord", "cycloid", "mercury"] {
            for phase in ["build", "query"] {
                for &n in sweep_sizes(false).iter().chain(sweep_sizes(true)) {
                    let name = kernel_name(sys, phase, n);
                    assert_ne!(name, "scale_other", "{sys}/{phase}/{n} unnamed");
                    seen.insert(name);
                }
            }
        }
        // 3 systems × 2 phases × 5 distinct sizes across both modes
        assert_eq!(seen.len(), 30);
    }

    #[test]
    fn tiny_sweep_end_to_end() {
        // Two tiny sizes exercise the whole pipeline — build, query,
        // outlink sampling, growth checks, both renderers — in test time.
        let run = run_scale_at(7, &[64, 256], 200, None);
        assert_eq!(run.points.len(), 6);
        assert_eq!(run.kernels.len(), 12);
        for p in &run.points {
            assert!(p.build_ms >= 0.0);
            assert!(p.query_ops_per_sec > 0.0, "{}: no throughput", p.system);
            assert!(p.mean_hops > 0.0, "{}: zero hops", p.system);
            assert!(p.bytes_per_node.is_none(), "no probe installed");
            assert!(p.max_outlinks > 0);
        }
        assert_eq!(run.checks.len(), 3);
        let cyc = run.checks.iter().find(|c| c.system == "cycloid").unwrap();
        assert_eq!(cyc.claim, "constant_degree");
        assert!(cyc.ok, "cycloid degree {} past bound", cyc.observed);
        let table = render_scale_table(&run);
        assert!(table.contains("## Scale sweep"));
        assert!(table.contains("## Growth checks"));
        assert!(table.contains("| chord | 64 |"));
        let cfg = ReproConfig { quick: true, seed: 7, ..ReproConfig::default() };
        let j = render_scale_json(&cfg, &run);
        assert!(j.starts_with("{\"schema\":\"lorm-repro/perf-v2\",\"config\":{"), "{j}");
        assert!(j.contains("\"sizes\":[64,256]"));
        assert!(j.contains("\"scale\":["));
        assert!(j.contains("\"growth_checks\":["));
        assert!(j.contains("\"claim\":\"constant_degree\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn growth_checks_flag_superlogarithmic_hops() {
        // Synthetic points: hops growing like sqrt(n) must fail the
        // O(log n) band; hops at 0.5·log2 n must pass.
        let mk = |system: &'static str, n: usize, hops: f64| ScalePoint {
            system,
            n,
            build_ms: 1.0,
            bytes_per_node: None,
            query_ops_per_sec: 1.0,
            mean_hops: hops,
            max_outlinks: 7,
        };
        let good: Vec<ScalePoint> = [1_000usize, 10_000, 100_000]
            .iter()
            .map(|&n| mk("chord", n, 0.5 * (n as f64).log2()))
            .collect();
        let checks = growth_checks(&good);
        assert!(checks.iter().find(|c| c.system == "chord").unwrap().ok);
        let bad: Vec<ScalePoint> = [1_000usize, 10_000, 100_000]
            .iter()
            .map(|&n| mk("chord", n, (n as f64).sqrt()))
            .collect();
        let checks = growth_checks(&bad);
        let chord = checks.iter().find(|c| c.system == "chord").unwrap();
        assert!(!chord.ok, "sqrt-growth passed: observed {}", chord.observed);
        // Degree check fails when the degree exceeds the constant bound.
        let big_degree = vec![ScalePoint { max_outlinks: 40, ..mk("cycloid", 1_000, 3.0) }];
        let checks = growth_checks(&big_degree);
        assert!(!checks.iter().find(|c| c.system == "cycloid").unwrap().ok);
        // Empty sweeps never claim success.
        for c in growth_checks(&[]) {
            assert!(!c.ok, "{} ok on empty sweep", c.system);
        }
    }

    #[test]
    fn bytes_accounting_is_none_without_probe_and_monotone_with() {
        assert_eq!(bytes_per_node(None, None, 10), None);
        assert_eq!(bytes_per_node(Some(100), Some(1100), 10), Some(100.0));
        // A net-negative delta (frees attributed to the window) clamps to 0.
        assert_eq!(bytes_per_node(Some(1100), Some(100), 10), Some(0.0));
    }
}
