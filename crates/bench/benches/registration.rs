//! Maintenance-path kernels: routed report registration per system (the
//! write path of the maintenance table) and LORM's semantic prefix-query
//! extension.

use analysis::System;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid_resource::{AttrId, ResourceDiscovery, ResourceInfo, Workload};
use lorm::semantic::SemanticCodec;
use lorm::{Lorm, LormConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim::{build_system, SimConfig};
use std::hint::black_box;

fn bench_register(c: &mut Criterion) {
    let cfg = SimConfig::quick();
    let mut wl_rng = SmallRng::seed_from_u64(0x4E9);
    let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).unwrap();
    let mut group = c.benchmark_group("register_report");
    for s in System::ALL {
        let mut sys = build_system(s, &workload, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, _| {
            let mut rng = SmallRng::seed_from_u64(0x4EA);
            b.iter(|| {
                let info = ResourceInfo {
                    attr: AttrId(rng.gen_range(0..cfg.attrs as u32)),
                    value: rng.gen_range(1.0..cfg.values as f64).round(),
                    owner: rng.gen_range(0..cfg.nodes),
                };
                black_box(sys.register(info).unwrap().hops)
            });
        });
    }
    group.finish();
}

fn bench_semantic_prefix_query(c: &mut Criterion) {
    let space = grid_resource::AttributeSpace::from_names(["os"], 1.0, 1e6).expect("valid domain");
    let os = space.by_name("os").unwrap();
    let codec = SemanticCodec::new(&space);
    let mut sys = Lorm::new(896, &space, LormConfig { dimension: 7, ..Default::default() });
    let distros = ["linux-5.15", "linux-6.1", "linux-6.8", "windows-11", "freebsd-14"];
    for (i, d) in distros.iter().cycle().take(500).enumerate() {
        sys.register(ResourceInfo { attr: os, value: codec.encode(d), owner: i % 896 }).unwrap();
    }
    c.bench_function("semantic_prefix_query", |b| {
        let mut rng = SmallRng::seed_from_u64(0x4EB);
        b.iter(|| {
            let q = codec.prefix_query(&[(os, "linux")]);
            let origin = rng.gen_range(0..896);
            black_box(sys.query_from(origin, &q).unwrap().tally.matches)
        });
    });
}

criterion_group!(benches, bench_register, bench_semantic_prefix_query);
criterion_main!(benches);
