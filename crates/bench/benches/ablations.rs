//! Ablation kernels: LPH vs hashed placement (range-probe cost), and the
//! Cycloid dimension trade-off (lookup cost at constant degree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid_resource::{QueryMix, ResourceDiscovery, Workload};
use lorm::{Lorm, LormConfig, Placement};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim::SimConfig;
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    let cfg = SimConfig::quick();
    let mut wl_rng = SmallRng::seed_from_u64(0xAB);
    let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).unwrap();
    let mut group = c.benchmark_group("ablate_placement_range_query");
    for (label, placement) in [("lph", Placement::Lph), ("hashed", Placement::Hashed)] {
        let mut sys = Lorm::new(
            cfg.nodes,
            &workload.space,
            LormConfig { dimension: cfg.dimension, seed: cfg.seed, placement },
        );
        sys.place_all(&workload.reports);
        group.bench_function(label, |b| {
            let mut rng = SmallRng::seed_from_u64(0xAC);
            b.iter(|| {
                let q = workload.random_query(1, QueryMix::Range, &mut rng);
                let origin = rng.gen_range(0..cfg.nodes);
                black_box(sys.query_from(origin, &q).unwrap().tally.visited)
            });
        });
    }
    group.finish();
}

fn bench_dimension(c: &mut Criterion) {
    use cycloid::{Cycloid, CycloidConfig, CycloidId};
    use dht_core::Overlay;
    let mut group = c.benchmark_group("ablate_dimension_lookup");
    for d in [6u8, 8, 10] {
        let n = d as usize * (1usize << d);
        let net = Cycloid::build(n, CycloidConfig { dimension: d, seed: 5 });
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let mut rng = SmallRng::seed_from_u64(6);
            b.iter(|| {
                let from = net.random_node(&mut rng).unwrap();
                let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
                black_box(net.route_stats(from, key).unwrap().hops)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement, bench_dimension);
criterion_main!(benches);
