//! Figures 3(b–d) kernel: resource-information placement (every node's
//! periodic report) and directory-distribution extraction, per system.

use analysis::System;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::{build_system, SimConfig, TestBed};
use std::hint::black_box;

fn bench_place_all(c: &mut Criterion) {
    let cfg = SimConfig::quick();
    let bed = TestBed::with_systems(cfg, &[]); // workload only
    let mut group = c.benchmark_group("fig3_place_all");
    group.sample_size(10);
    for s in System::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, &s| {
            let mut sys = build_system(s, &bed.workload, &cfg);
            b.iter(|| {
                sys.place_all(&bed.workload.reports);
                black_box(sys.total_pieces())
            });
        });
    }
    group.finish();
}

fn bench_distribution_extraction(c: &mut Criterion) {
    let cfg = SimConfig::quick();
    let bed = TestBed::new(cfg);
    let mut group = c.benchmark_group("fig3_directory_stats");
    for s in System::ALL {
        let sys = bed.system(s);
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, _| {
            b.iter(|| {
                let loads = sys.directory_loads();
                black_box((loads.mean(), loads.p1(), loads.p99()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_place_all, bench_distribution_extraction);
criterion_main!(benches);
