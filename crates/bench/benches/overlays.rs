//! Microbenchmarks of the two overlay substrates: lookup routing and bulk
//! construction, Chord vs Cycloid. These are the kernels every figure's
//! cost decomposes into (Theorem 4.7's `log n / 2` vs `d` constants).

use chord::{Chord, ChordConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::Overlay;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_lookup");
    for d in [7u8, 8] {
        let n = d as usize * (1usize << d);
        let chord = Chord::build(n, ChordConfig::default());
        let cycloid = Cycloid::build(n, CycloidConfig { dimension: d, seed: 1 });
        group.bench_with_input(BenchmarkId::new("chord", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| {
                let from = chord.random_node(&mut rng).unwrap();
                let key: u64 = rng.gen();
                black_box(chord.route_stats(from, key).unwrap().hops)
            });
        });
        group.bench_with_input(BenchmarkId::new("cycloid", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| {
                let from = cycloid.random_node(&mut rng).unwrap();
                let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
                black_box(cycloid.route_stats(from, key).unwrap().hops)
            });
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_build");
    group.sample_size(10);
    let n = 2048usize;
    group.bench_function("chord_2048", |b| {
        b.iter(|| black_box(Chord::build(n, ChordConfig::default()).len()))
    });
    group.bench_function("cycloid_2048", |b| {
        b.iter(|| black_box(Cycloid::build(n, CycloidConfig::default()).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_build);
criterion_main!(benches);
