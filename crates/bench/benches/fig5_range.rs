//! Figure 5 kernel: resolving range queries — where the systems diverge
//! by orders of magnitude (Theorem 4.9: `1 + n/4` probes per attribute for
//! Mercury/MAAN vs `1 + d/4` for LORM vs 1 for SWORD).

use analysis::System;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid_resource::QueryMix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim::{SimConfig, TestBed};
use std::hint::black_box;

fn bench_range_query(c: &mut Criterion) {
    let cfg = SimConfig::quick();
    let bed = TestBed::new(cfg);
    let mut group = c.benchmark_group("fig5_range_query");
    // system-wide walkers probe ~n/4 nodes per attribute: fewer samples
    group.sample_size(30);
    for s in System::ALL {
        let sys = bed.system(s);
        group.bench_with_input(BenchmarkId::new(s.name(), 3), &3usize, |b, &arity| {
            let mut rng = SmallRng::seed_from_u64(0xF5);
            b.iter(|| {
                let q = bed.workload.random_query(arity, QueryMix::Range, &mut rng);
                let origin = rng.gen_range(0..cfg.nodes);
                black_box(sys.query_from(origin, &q).unwrap().tally.visited)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_query);
criterion_main!(benches);
