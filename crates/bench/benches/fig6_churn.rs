//! Figure 6 kernel: a short churn run (Poisson joins/leaves interleaved
//! with queries and periodic maintenance) per system.

use analysis::System;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid_resource::{ChurnSchedule, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sim::experiments::fig6::{run_churn_one, ChurnSetup};
use sim::experiments::Metric;
use sim::{build_system, SimConfig};
use std::hint::black_box;

fn bench_churn_run(c: &mut Criterion) {
    let cfg = SimConfig::quick();
    let mut wl_rng = SmallRng::seed_from_u64(0xF6);
    let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).unwrap();
    let setup = ChurnSetup { requests: 100, rates: vec![0.4], ..ChurnSetup::quick() };
    let mut sched_rng = SmallRng::seed_from_u64(0xF7);
    let schedule = ChurnSchedule::generate(0.4, 10.0, &mut sched_rng);
    let mut group = c.benchmark_group("fig6_churn_run_100req");
    group.sample_size(10);
    for s in System::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, &s| {
            b.iter(|| {
                let mut sys = build_system(s, &workload, &cfg);
                let cell =
                    run_churn_one(sys.as_mut(), &workload, &schedule, &setup, Metric::Hops, 1);
                black_box(cell.avg)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_churn_run);
criterion_main!(benches);
