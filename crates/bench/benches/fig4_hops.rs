//! Figure 4 kernel: resolving non-range multi-attribute queries — the
//! per-query routing cost each system pays (Theorems 4.7/4.8 predict the
//! ratios: MAAN 2×, LORM `d / (log n / 2)`× relative to Mercury/SWORD).

use analysis::System;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid_resource::QueryMix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim::{SimConfig, TestBed};
use std::hint::black_box;

fn bench_nonrange_query(c: &mut Criterion) {
    let cfg = SimConfig::quick();
    let bed = TestBed::new(cfg);
    let mut group = c.benchmark_group("fig4_nonrange_query");
    for arity in [1usize, 5, 10] {
        for s in System::ALL {
            let sys = bed.system(s);
            let id = BenchmarkId::new(s.name(), arity);
            group.bench_with_input(id, &arity, |b, &arity| {
                let mut rng = SmallRng::seed_from_u64(0xF4);
                b.iter(|| {
                    let q = bed.workload.random_query(arity, QueryMix::NonRange, &mut rng);
                    let origin = rng.gen_range(0..cfg.nodes);
                    black_box(sys.query_from(origin, &q).unwrap().tally.hops)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_nonrange_query);
criterion_main!(benches);
