//! Figure 3(a) kernel: structure-maintenance measurement — counting the
//! distinct outlinks every node maintains, for one Chord hub (Mercury pays
//! this m times) vs one Cycloid (LORM). Also times the full scaled-down
//! Figure 3(a) sweep.

use chord::{Chord, ChordConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use cycloid::{Cycloid, CycloidConfig};
use dht_core::Overlay;
use sim::experiments::fig3;
use std::hint::black_box;

fn bench_outlink_census(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a_outlink_census");
    let n = 2048usize;
    let chord = Chord::build(n, ChordConfig::default());
    let cycloid = Cycloid::build(n, CycloidConfig::default());
    group.bench_function("chord_hub_2048", |b| {
        b.iter(|| {
            let total: usize =
                chord.live_nodes().iter().map(|&i| chord.outlinks(i).unwrap_or(0)).sum();
            black_box(total)
        })
    });
    group.bench_function("cycloid_2048", |b| {
        b.iter(|| {
            let total: usize =
                cycloid.live_nodes().iter().map(|&i| cycloid.outlinks(i).unwrap_or(0)).sum();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_fig3a_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a_sweep");
    group.sample_size(10);
    group.bench_function("dims_5_6_m10", |b| {
        b.iter(|| black_box(fig3::fig3a(&[5, 6], 10, 0xBE).rows.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_outlink_census, bench_fig3a_sweep);
criterion_main!(benches);
